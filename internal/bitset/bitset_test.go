package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValue(t *testing.T) {
	var b Bitset
	if b.Len() != 0 {
		t.Fatalf("zero value Len = %d, want 0", b.Len())
	}
	if b.Get(0) || b.Get(100) {
		t.Fatal("zero value should report false everywhere")
	}
	b.Append(true)
	b.Append(false)
	b.Append(true)
	if got := b.String(); got != "101" {
		t.Fatalf("String = %q, want 101", got)
	}
}

func TestSetGet(t *testing.T) {
	b := New(130)
	positions := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, p := range positions {
		b.Set(p, true)
	}
	for _, p := range positions {
		if !b.Get(p) {
			t.Errorf("bit %d not set", p)
		}
	}
	if got := b.Count(); got != len(positions) {
		t.Fatalf("Count = %d, want %d", got, len(positions))
	}
	b.Set(64, false)
	if b.Get(64) {
		t.Error("bit 64 should be cleared")
	}
	if got := b.Count(); got != len(positions)-1 {
		t.Fatalf("Count after clear = %d, want %d", got, len(positions)-1)
	}
}

func TestGrowViaSet(t *testing.T) {
	b := New(0)
	b.Set(1000, true)
	if b.Len() != 1001 {
		t.Fatalf("Len = %d, want 1001", b.Len())
	}
	if !b.Get(1000) {
		t.Fatal("bit 1000 should be set")
	}
	if b.Count() != 1 {
		t.Fatalf("Count = %d, want 1", b.Count())
	}
}

func TestGetOutOfRange(t *testing.T) {
	b := New(10)
	if b.Get(-1) {
		t.Error("Get(-1) should be false")
	}
	if b.Get(10) {
		t.Error("Get(Len) should be false")
	}
}

func TestSetNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set(-1) should panic")
		}
	}()
	New(4).Set(-1, true)
}

func TestClone(t *testing.T) {
	b := New(70)
	b.Set(3, true)
	b.Set(69, true)
	c := b.Clone()
	c.Set(3, false)
	if !b.Get(3) {
		t.Fatal("Clone must not alias original storage")
	}
	if !c.Get(69) {
		t.Fatal("Clone lost bit 69")
	}
}

func TestAppendSequence(t *testing.T) {
	var b Bitset
	rng := rand.New(rand.NewSource(42))
	want := make([]bool, 500)
	for i := range want {
		want[i] = rng.Intn(2) == 1
		b.Append(want[i])
	}
	for i, w := range want {
		if b.Get(i) != w {
			t.Fatalf("bit %d = %v, want %v", i, b.Get(i), w)
		}
	}
}

// Property: Count equals the number of distinct positions set.
func TestCountMatchesSetPositions(t *testing.T) {
	f := func(raw []uint16) bool {
		b := New(0)
		seen := map[int]bool{}
		for _, r := range raw {
			p := int(r)
			b.Set(p, true)
			seen[p] = true
		}
		return b.Count() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: String round-trips Get.
func TestStringConsistent(t *testing.T) {
	f := func(raw []bool) bool {
		var b Bitset
		for _, v := range raw {
			b.Append(v)
		}
		s := b.String()
		if len(s) != len(raw) {
			return false
		}
		for i, v := range raw {
			if (s[i] == '1') != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
