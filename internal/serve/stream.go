package serve

import (
	"context"
	"errors"
	"io"
	"sync/atomic"
	"time"

	"pref/internal/engine"
	"pref/internal/plan"
	"pref/internal/value"
)

// Response is one fully materialized query result plus serving metadata.
type Response struct {
	Schema plan.Schema
	Rows   []value.Tuple
	// Epoch is the published data epoch the query was pinned to.
	Epoch int64
	// Stats carries the engine's execution counters.
	Stats engine.Stats
	// CacheHit reports whether the rewrite came from the plan cache;
	// Attempts counts executions (1 = no retries); Latency is end-to-end
	// from submission through execution.
	CacheHit bool
	Attempts int
	Latency  time.Duration
}

// Stream delivers one query result in bounded chunks. The producer runs
// at most StreamBuffer+1 chunks ahead of the consumer, and the serving
// slot stays held until the stream ends — so a slow consumer pushes back
// on admission instead of piling results up in memory. Streams must be
// drained or closed; an abandoned stream is released when its query
// context dies (client deadline or forced drain).
type Stream struct {
	// Schema, Epoch, CacheHit, Attempts and Latency mirror Response.
	Schema   plan.Schema
	Epoch    int64
	Stats    engine.Stats
	CacheHit bool
	Attempts int
	Latency  time.Duration

	ctx      context.Context
	ch       chan []value.Tuple
	finish   func()
	complete atomic.Bool // producer delivered every chunk
}

// newStream starts the producer goroutine chunking res.Rows into a
// bounded channel. finish releases the serving slot and the query
// context; the stream arranges for it to run exactly once on every
// termination path.
func newStream(qctx context.Context, chunkRows, buffer int, res *engine.Result, attempts int, cacheHit bool, latency time.Duration, finish func()) *Stream {
	st := &Stream{
		Schema:   res.Schema,
		Epoch:    res.Epoch,
		Stats:    res.Stats,
		CacheHit: cacheHit,
		Attempts: attempts,
		Latency:  latency,
		ctx:      qctx,
		ch:       make(chan []value.Tuple, buffer),
		finish:   finish,
	}
	rows := res.Rows
	go func() {
		defer close(st.ch)
		for len(rows) > 0 {
			n := chunkRows
			if n > len(rows) {
				n = len(rows)
			}
			// Backpressure point: blocks when the consumer lags by a full
			// buffer; a dead query context unblocks the producer so a
			// forced drain never strands this goroutine.
			select {
			case st.ch <- rows[:n:n]:
				rows = rows[n:]
			case <-qctx.Done():
				return
			}
		}
		st.complete.Store(true)
	}()
	// Abandoned-stream safety net: when the query context dies for any
	// reason (client deadline, forced drain, or normal Close below), the
	// slot is released even if the consumer never calls Close.
	context.AfterFunc(qctx, finish)
	return st
}

// Next returns the next chunk of rows. At end of stream it returns
// (nil, io.EOF) and releases the serving slot; if the query's deadline
// expires mid-delivery it returns the typed deadline error.
func (st *Stream) Next() ([]value.Tuple, error) {
	select {
	case rows, ok := <-st.ch:
		if !ok {
			st.finish()
			if !st.complete.Load() {
				// The producer was cut off by a dying context, not done.
				if err := st.ctx.Err(); errors.Is(err, context.DeadlineExceeded) {
					return nil, deadlineErr(err)
				}
				return nil, st.ctx.Err()
			}
			return nil, io.EOF
		}
		return rows, nil
	case <-st.ctx.Done():
		st.finish()
		if err := st.ctx.Err(); errors.Is(err, context.DeadlineExceeded) {
			return nil, deadlineErr(err)
		}
		return nil, st.ctx.Err()
	}
}

// Drain consumes the rest of the stream into a Response.
func (st *Stream) Drain() (*Response, error) {
	resp := &Response{
		Schema:   st.Schema,
		Epoch:    st.Epoch,
		Stats:    st.Stats,
		CacheHit: st.CacheHit,
		Attempts: st.Attempts,
		Latency:  st.Latency,
	}
	for {
		rows, err := st.Next()
		if err == io.EOF {
			return resp, nil
		}
		if err != nil {
			st.Close()
			return nil, err
		}
		resp.Rows = append(resp.Rows, rows...)
	}
}

// Close abandons the stream, releasing the serving slot. Safe to call
// multiple times and after Drain.
func (st *Stream) Close() { st.finish() }
