// Package serve is the multi-tenant serving layer: a long-lived query
// server wrapping the PREF engine with deadline propagation, per-tenant
// quotas, weighted-fair admission, cost-priced load shedding, bounded
// retry budgets, a plan cache, streaming delivery with backpressure, and
// graceful drain.
//
// Every submission climbs a four-rung admission ladder before any work
// runs:
//
//	1. quota  — the tenant's token bucket (sustained rate + burst)
//	2. shed   — cost-priced overload protection: above the load
//	            threshold, expensive queries are turned away first
//	3. queue  — the server's weighted-fair serving slots (bounded
//	            concurrency, fair across tenants by weight)
//	4. gate   — the cluster layer's own admission gate and breakers,
//	            inside the engine
//
// A query rejected at any rung fails with a typed *RejectedError; a query
// killed by its client's deadline fails with engine.ErrDeadlineExceeded,
// wherever along the ladder or execution the deadline fired. Nothing is
// dropped silently.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pref/internal/cluster"
	"pref/internal/engine"
	"pref/internal/fault"
	"pref/internal/partition"
	"pref/internal/plan"
	"pref/internal/table"
)

// Options configures a Server.
type Options struct {
	// DB and Config are the database and partitioning design to serve.
	// PDB, when non-nil, supplies an already-partitioned database instead
	// (sharing it with a write path that publishes new epochs).
	DB     *table.Database
	Config *partition.Config
	PDB    *table.PartitionedDatabase

	// Queries is the prepared-query catalog: name → logical plan builder.
	// Submissions reference queries by name; unknown names are rejected
	// with ErrUnknownQuery.
	Queries map[string]func() plan.Node

	// Tenants declares the tenants allowed to submit. Submissions under
	// other names are rejected with ErrUnknownTenant.
	Tenants []TenantConfig

	// MaxConcurrent bounds concurrently served queries (rung 3 slots;
	// default 8). QueueTimeout bounds the weighted-fair queue wait
	// (default 1s); expiry rejects with cluster.ErrAdmissionTimeout.
	MaxConcurrent int
	QueueTimeout  time.Duration

	// ShedThreshold is the load — (running+queued)/slots — above which
	// cost-priced shedding starts (default 1.5).
	ShedThreshold float64

	// RetryBudget caps stored retry tokens (default 10); RetryEarn is the
	// fraction of a token earned per success (default 0.1). MaxAttempts
	// bounds executions per query including the first (default 3).
	RetryBudget float64
	RetryEarn   float64
	MaxAttempts int

	// Cluster configures the rung-4 cluster layer. Nodes defaults to the
	// design's partition count.
	Cluster cluster.Options

	// Exec is the base execution model (cache size, row engine). Its
	// Fault and Cluster fields are owned by the server and overwritten.
	Exec engine.ExecOptions

	// FaultFor, when set, draws the deterministic fault schedule for one
	// execution attempt of submission seq — the soak hook that makes
	// fault storms reproducible. Nil serves fault-free.
	FaultFor func(seq int64, attempt int) *fault.Policy

	// ChunkRows is the streaming chunk size in rows (default 64);
	// StreamBuffer the bounded chunk-channel depth (default 2). Together
	// they cap how far a producer can run ahead of a slow consumer.
	ChunkRows    int
	StreamBuffer int

	// Plan carries the §2.2 rewrite toggles.
	Plan plan.Options
}

func (o Options) withDefaults() Options {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 8
	}
	if o.QueueTimeout <= 0 {
		o.QueueTimeout = time.Second
	}
	if o.ShedThreshold <= 0 {
		o.ShedThreshold = 1.5
	}
	if o.RetryBudget <= 0 {
		o.RetryBudget = 10
	}
	if o.RetryEarn <= 0 {
		o.RetryEarn = 0.1
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.ChunkRows <= 0 {
		o.ChunkRows = 64
	}
	if o.StreamBuffer <= 0 {
		o.StreamBuffer = 2
	}
	if o.Cluster.Nodes <= 0 && o.Config != nil {
		o.Cluster.Nodes = o.Config.NumPartitions
	}
	return o
}

// Server is a long-lived multi-tenant query server over one partitioned
// database. It is safe for concurrent use; Close drains it.
type Server struct {
	opt       Options
	pdb       *table.PartitionedDatabase
	cl        *cluster.Cluster
	adm       *admitter
	shed      *shedder
	budget    *retryBudget
	plans     *planCache
	costs     *costTable
	designSig string

	// baseCtx is cancelled by a forced drain; every query context is
	// derived from the client context but additionally dies with it.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup
	seq      atomic.Int64

	met metrics
}

// metrics is the server's internal counter state; Metrics() snapshots it.
type metrics struct {
	mu        sync.Mutex
	submitted int64
	completed int64
	failed    int64
	deadline  int64
	rejected  map[string]int64 // by ladder stage
	retries   int64
	noBudget  int64
	okLat     Hist // end-to-end latency of successful queries
}

// Metrics is a point-in-time snapshot of the server's counters.
type Metrics struct {
	// Submitted counts every Submit/Stream call; Completed successful
	// queries; Failed typed execution failures; DeadlineExceeded queries
	// killed by their deadline anywhere along the path.
	Submitted        int64
	Completed        int64
	Failed           int64
	DeadlineExceeded int64
	// Rejected counts admission-ladder rejections by stage ("quota",
	// "shed", "queue", "closed").
	Rejected map[string]int64
	// Retries counts re-executions spent; RetryBudgetDenied retries the
	// budget refused (the anti-amplification path under fault storms).
	Retries           int64
	RetryBudgetDenied int64
	// PlanCacheHits/Misses count rewrite-cache outcomes; PlanCacheSize is
	// the live entry count.
	PlanCacheHits   int64
	PlanCacheMisses int64
	PlanCacheSize   int
	// Latency summarizes end-to-end latency of successful queries.
	Latency Summary
	// Cluster is the rung-4 gate's own counters.
	Cluster cluster.Stats
}

// NewServer partitions the database (unless a pre-partitioned one is
// supplied) and starts the serving layer. The caller must Close it.
func NewServer(opt Options) (*Server, error) {
	opt = opt.withDefaults()
	if opt.Config == nil {
		return nil, errors.New("serve: Options.Config is required")
	}
	if len(opt.Queries) == 0 {
		return nil, errors.New("serve: Options.Queries is empty")
	}
	if len(opt.Tenants) == 0 {
		return nil, errors.New("serve: Options.Tenants is empty")
	}
	pdb := opt.PDB
	if pdb == nil {
		if opt.DB == nil {
			return nil, errors.New("serve: Options.DB or Options.PDB is required")
		}
		var err error
		pdb, err = partition.Apply(opt.DB, opt.Config)
		if err != nil {
			return nil, fmt.Errorf("serve: partitioning failed: %w", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opt:        opt,
		pdb:        pdb,
		cl:         cluster.New(opt.Cluster),
		adm:        newAdmitter(opt.MaxConcurrent, opt.QueueTimeout, opt.Tenants),
		shed:       newShedder(opt.ShedThreshold),
		budget:     newRetryBudget(opt.RetryBudget, opt.RetryEarn),
		plans:      newPlanCache(),
		costs:      newCostTable(),
		designSig:  opt.Config.String(),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.met.rejected = make(map[string]int64)
	return s, nil
}

// Epoch returns the currently published data epoch — the snapshot new
// queries pin to.
func (s *Server) Epoch() int64 { return s.pdb.Epoch() }

// reject records and returns a typed admission rejection.
func (s *Server) reject(stage, tenant, query string, cost, retryAfter time.Duration, sentinel error) error {
	s.met.mu.Lock()
	s.met.rejected[stage]++
	s.met.mu.Unlock()
	return &RejectedError{
		Stage: stage, Tenant: tenant, Query: query,
		Cost: cost, RetryAfter: retryAfter, err: sentinel,
	}
}

// deadlineErr wraps a context expiry in the typed deadline error, keeping
// context.DeadlineExceeded matchable underneath.
func deadlineErr(cause error) error {
	return fmt.Errorf("%w: %w", engine.ErrDeadlineExceeded, cause)
}

// Submit runs one prepared query for a tenant and returns the fully
// materialized result. It is Stream plus a drain: large results still
// flow through the bounded chunk channel, so Submit exercises the same
// backpressure path.
func (s *Server) Submit(ctx context.Context, tenant, query string) (*Response, error) {
	st, err := s.Stream(ctx, tenant, query)
	if err != nil {
		return nil, err
	}
	return st.Drain()
}

// Stream admits one prepared query through the ladder, executes it, and
// returns a Stream delivering the result in bounded chunks. The serving
// slot is held until the stream is drained or closed — a slow consumer
// exerts backpressure on admission, not on memory. The caller must drain
// or Close the stream.
func (s *Server) Stream(ctx context.Context, tenant, query string) (*Stream, error) {
	start := time.Now()
	s.met.mu.Lock()
	s.met.submitted++
	s.met.mu.Unlock()

	mk, ok := s.opt.Queries[query]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownQuery, query)
	}
	if s.adm.lane(tenant) == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, tenant)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, s.reject("closed", tenant, query, 0, 0, ErrServerClosed)
	}
	s.mu.Unlock()

	// Rung 1: tenant quota.
	if ok, retryAfter := s.adm.takeToken(tenant, time.Now()); !ok {
		return nil, s.reject("quota", tenant, query, 0, retryAfter, ErrQuotaExceeded)
	}

	// Rung 2: cost-priced shedding. The query is priced at the EWMA of
	// its own past executions under this design; never-seen queries are
	// priced at the global average.
	cost := s.costs.price(query, s.designSig)
	if ok, retryAfter := s.shed.admit(s.adm.load(), cost); !ok {
		return nil, s.reject("shed", tenant, query, cost, retryAfter, ErrOverloaded)
	}

	// The query context: the client's deadline, additionally killed by a
	// forced drain. stopAfter must run on every exit path or the
	// AfterFunc goroutine outlives the query.
	qctx, qcancel := context.WithCancel(ctx)
	stopAfter := context.AfterFunc(s.baseCtx, qcancel)
	cleanup := func() {
		stopAfter()
		qcancel()
	}

	// Rung 3: weighted-fair serving slot.
	costSec := cost.Seconds()
	if costSec <= 0 {
		costSec = 1
	}
	release, err := s.adm.acquire(qctx, tenant, costSec)
	if err != nil {
		cleanup()
		switch {
		case errors.Is(err, errQueueTimeout):
			return nil, s.reject("queue", tenant, query, cost, s.opt.QueueTimeout, cluster.ErrAdmissionTimeout)
		case errors.Is(err, context.DeadlineExceeded):
			s.met.mu.Lock()
			s.met.deadline++
			s.met.mu.Unlock()
			return nil, deadlineErr(err)
		case s.baseCtx.Err() != nil:
			return nil, s.reject("closed", tenant, query, 0, 0, ErrServerClosed)
		default:
			return nil, err
		}
	}

	// The slot is held through execution AND delivery; finish releases it
	// exactly once from whichever path ends the stream first (drain, EOF,
	// Close, client deadline, forced drain).
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		release()
		cleanup()
		return nil, s.reject("closed", tenant, query, 0, 0, ErrServerClosed)
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	var finishOnce sync.Once
	finish := func() {
		finishOnce.Do(func() {
			release()
			cleanup()
			s.inflight.Done()
		})
	}

	res, attempts, cacheHit, err := s.execute(qctx, mk, query)
	elapsed := time.Since(start)
	if err != nil {
		s.met.mu.Lock()
		if errors.Is(err, engine.ErrDeadlineExceeded) {
			s.met.deadline++
		} else {
			s.met.failed++
		}
		s.met.mu.Unlock()
		finish()
		return nil, err
	}

	// Success: feed pricing, earn retry budget, record latency.
	s.costs.observe(query, s.designSig, elapsed)
	s.shed.observe(elapsed)
	s.budget.credit()
	s.met.mu.Lock()
	s.met.completed++
	s.met.okLat.Observe(elapsed)
	s.met.mu.Unlock()

	return newStream(qctx, s.opt.ChunkRows, s.opt.StreamBuffer, res, attempts, cacheHit, elapsed, finish), nil
}

// execute runs the query against the engine with plan caching and a
// budget-bounded retry loop.
func (s *Server) execute(qctx context.Context, mk func() plan.Node, query string) (res *engine.Result, attempts int, cacheHit bool, err error) {
	// Plan cache, keyed on (query, design, published epoch): a write-path
	// publish rolls the epoch and every cached plan of the old epoch
	// misses by construction.
	key := planKey{query: query, design: s.designSig, epoch: s.pdb.Epoch()}
	rw, cacheHit := s.plans.get(key)
	if !cacheHit {
		rw, err = plan.Rewrite(mk(), s.pdb.Schema, s.opt.Config, s.opt.Plan)
		if err != nil {
			return nil, 0, false, fmt.Errorf("serve: rewrite of %q failed: %w", query, err)
		}
		s.plans.put(key, rw)
	}

	seq := s.seq.Add(1)
	for attempt := 0; attempt < s.opt.MaxAttempts; attempt++ {
		eopt := s.opt.Exec
		eopt.Cluster = s.cl
		if s.opt.FaultFor != nil {
			eopt.Fault = s.opt.FaultFor(seq, attempt)
		}
		res, err = engine.ExecuteCtx(qctx, rw, s.pdb, eopt)
		attempts = attempt + 1
		if err == nil {
			return res, attempts, cacheHit, nil
		}
		if !s.retryable(qctx, err) {
			return nil, attempts, cacheHit, err
		}
		// Spend one retry token; an exhausted budget surfaces the failure
		// instead of amplifying the storm.
		if !s.budget.spend() {
			s.met.mu.Lock()
			s.met.noBudget++
			s.met.mu.Unlock()
			return nil, attempts, cacheHit, err
		}
		s.met.mu.Lock()
		s.met.retries++
		s.met.mu.Unlock()
	}
	return nil, attempts, cacheHit, err
}

// retryable reports whether a failed execution is worth re-attempting:
// transient fault-layer failures are, deadline expiry, cancellation, and
// unrecoverable data loss are not.
func (s *Server) retryable(qctx context.Context, err error) bool {
	if qctx.Err() != nil {
		return false
	}
	if errors.Is(err, engine.ErrDeadlineExceeded) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, fault.ErrPartitionLost) {
		return false
	}
	return true
}

// Metrics snapshots the server's counters.
func (s *Server) Metrics() Metrics {
	s.met.mu.Lock()
	rej := make(map[string]int64, len(s.met.rejected))
	for k, v := range s.met.rejected {
		rej[k] = v
	}
	m := Metrics{
		Submitted:         s.met.submitted,
		Completed:         s.met.completed,
		Failed:            s.met.failed,
		DeadlineExceeded:  s.met.deadline,
		Rejected:          rej,
		Retries:           s.met.retries,
		RetryBudgetDenied: s.met.noBudget,
		Latency:           s.met.okLat.Summarize(),
	}
	s.met.mu.Unlock()
	m.PlanCacheHits, m.PlanCacheMisses, m.PlanCacheSize = s.plans.stats()
	m.Cluster = s.cl.Stats()
	return m
}

// Close drains the server: new submissions are rejected with
// ErrServerClosed, in-flight queries (including undelivered streams) run
// to completion, then the cluster layer's rebuild workers are joined and
// shut down. If ctx expires first the drain turns forced — every
// in-flight query context is cancelled — and Close still joins everything
// before returning ctx's error. Either way, no goroutine of the server
// survives Close.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var forced error
	select {
	case <-done:
	case <-ctx.Done():
		forced = ctx.Err()
		s.baseCancel()
		<-done
	}
	s.cl.WaitRebuilds()
	s.cl.Close()
	s.baseCancel()
	return forced
}
