package serve

import (
	"context"
	"errors"
	"sync"
	"time"
)

// TenantConfig declares one tenant of a server: its fair-share weight
// under contention and its sustained admission rate.
type TenantConfig struct {
	// Name identifies the tenant on Submit.
	Name string
	// Weight is the tenant's share of the serving slots under contention
	// (weighted-fair admission; default 1). A weight-4 tenant is granted
	// slots four times as often as a weight-1 tenant when both have
	// queries queued.
	Weight float64
	// Rate is the sustained admission rate in queries/second enforced by
	// a token bucket (0 = unlimited).
	Rate float64
	// Burst is the token-bucket depth: how many queries may arrive
	// back-to-back before the rate limit bites (default max(1, Rate)).
	Burst float64
}

func (tc TenantConfig) withDefaults() TenantConfig {
	if tc.Weight <= 0 {
		tc.Weight = 1
	}
	if tc.Burst <= 0 {
		tc.Burst = tc.Rate
		if tc.Burst < 1 {
			tc.Burst = 1
		}
	}
	return tc
}

// tokenBucket enforces one tenant's sustained admission rate. Tokens
// refill continuously at rate/sec up to burst; a take consumes one.
// Callers hold the owning admitter's mutex.
type tokenBucket struct {
	rate   float64 // tokens per second (0 = unlimited)
	burst  float64
	tokens float64
	last   time.Time
}

// take attempts to consume one token at the given instant. On refusal it
// returns the wait until the next token accrues — the Retry-After hint.
func (b *tokenBucket) take(now time.Time) (bool, time.Duration) {
	if b.rate <= 0 {
		return true, 0
	}
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	} else {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// errQueueTimeout is the admitter's internal queue-timeout signal; Submit
// converts it into a typed RejectedError wrapping
// cluster.ErrAdmissionTimeout.
var errQueueTimeout = errors.New("serve: admission queue timeout")

// waiter is one queued acquisition. granted is closed (under the admitter
// mutex) when a released slot is handed to it; a waiter that gives up
// removes itself from the queue under the same mutex, so grant and
// abandonment cannot race.
type waiter struct {
	granted chan struct{}
	cost    float64
}

// tenantLane is one tenant's admission state: its token bucket, its FIFO
// of waiting queries, and its weighted virtual time.
type tenantLane struct {
	cfg    TenantConfig
	bucket tokenBucket
	q      []*waiter
	// vt is the tenant's virtual time: admitted cost divided by weight.
	// The scheduler always grants the next slot to the waiting tenant
	// with the smallest vt, which is weighted-fair queuing: a tenant's
	// long-run slot share is proportional to its weight regardless of
	// how aggressively others submit.
	vt float64
	// active counts the tenant's running plus queued queries; a tenant
	// re-entering from idle has its vt caught up to the busiest floor so
	// accumulated idle credit cannot starve everyone else.
	active int
}

// admitter is the server's weighted-fair slot scheduler (admission ladder
// rung 3). It bounds concurrently served queries and, under contention,
// hands freed slots to waiting tenants in weighted-fair order rather than
// FIFO. The cluster's own admission gate (rung 4) sits below it.
type admitter struct {
	mu      sync.Mutex
	slots   int
	used    int
	queued  int
	timeout time.Duration
	lanes   map[string]*tenantLane
}

func newAdmitter(slots int, timeout time.Duration, tenants []TenantConfig) *admitter {
	a := &admitter{slots: slots, timeout: timeout, lanes: make(map[string]*tenantLane)}
	for _, tc := range tenants {
		tc = tc.withDefaults()
		a.lanes[tc.Name] = &tenantLane{
			cfg:    tc,
			bucket: tokenBucket{rate: tc.Rate, burst: tc.Burst},
		}
	}
	return a
}

// lane returns the tenant's lane (nil for unknown tenants).
func (a *admitter) lane(tenant string) *tenantLane {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lanes[tenant]
}

// takeToken runs the tenant's token bucket (rung 1).
func (a *admitter) takeToken(tenant string, now time.Time) (bool, time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ln := a.lanes[tenant]
	if ln == nil {
		return false, 0
	}
	return ln.bucket.take(now)
}

// load reports the serving pressure: (running + queued) / slots. Values
// above 1 mean the queue is growing; the shedder prices admission off it.
func (a *admitter) load() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.slots <= 0 {
		return 0
	}
	return float64(a.used+a.queued) / float64(a.slots)
}

// minActiveVT returns the smallest virtual time among tenants with work
// in flight, the floor idle tenants are caught up to.
func (a *admitter) minActiveVT() float64 {
	min, any := 0.0, false
	for _, ln := range a.lanes {
		if ln.active > 0 && (!any || ln.vt < min) {
			min, any = ln.vt, true
		}
	}
	return min
}

// acquire obtains one serving slot for the tenant, waiting in the
// weighted-fair queue up to the queue timeout and the caller's context.
// cost is the priced cost charged against the tenant's virtual time. The
// returned release must be called exactly once.
func (a *admitter) acquire(ctx context.Context, tenant string, cost float64) (func(), error) {
	if cost <= 0 {
		cost = 1
	}
	a.mu.Lock()
	ln := a.lanes[tenant]
	if ln == nil {
		a.mu.Unlock()
		return nil, ErrUnknownTenant
	}
	if ln.active == 0 {
		if floor := a.minActiveVT(); ln.vt < floor {
			ln.vt = floor
		}
	}
	ln.active++
	if a.slots <= 0 || a.used < a.slots {
		a.used++
		ln.vt += cost / ln.cfg.Weight
		a.mu.Unlock()
		return a.releaseFunc(tenant), nil
	}
	w := &waiter{granted: make(chan struct{}), cost: cost}
	ln.q = append(ln.q, w)
	a.queued++
	a.mu.Unlock()

	var timeoutC <-chan time.Time
	if a.timeout > 0 {
		t := time.NewTimer(a.timeout)
		defer t.Stop()
		timeoutC = t.C
	}
	select {
	case <-w.granted:
		return a.releaseFunc(tenant), nil
	case <-ctx.Done():
		return a.abandon(tenant, w, ctx.Err())
	case <-timeoutC:
		return a.abandon(tenant, w, errQueueTimeout)
	}
}

// abandon withdraws a waiter that gave up (context done or queue
// timeout). If a grant raced in before the withdrawal took the lock, the
// waiter owns a slot after all and must hand it back.
func (a *admitter) abandon(tenant string, w *waiter, cause error) (func(), error) {
	a.mu.Lock()
	ln := a.lanes[tenant]
	for i, q := range ln.q {
		if q == w {
			ln.q = append(ln.q[:i:i], ln.q[i+1:]...)
			a.queued--
			ln.active--
			a.mu.Unlock()
			return nil, cause
		}
	}
	a.mu.Unlock()
	// Granted concurrently: the slot is ours; give it straight back.
	a.releaseFunc(tenant)()
	return nil, cause
}

// releaseFunc returns the once-only release of one held slot.
func (a *admitter) releaseFunc(tenant string) func() {
	var once sync.Once
	return func() { once.Do(func() { a.release(tenant) }) }
}

// release frees one slot and hands it to the waiting tenant with the
// smallest virtual time (FIFO within the tenant). Lane iteration
// tie-breaks deterministically by name so tests can pin the grant order.
func (a *admitter) release(tenant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if ln := a.lanes[tenant]; ln != nil && ln.active > 0 {
		ln.active--
	}
	var next *tenantLane
	for _, ln := range a.lanes {
		if len(ln.q) == 0 {
			continue
		}
		if next == nil || ln.vt < next.vt || (ln.vt == next.vt && ln.cfg.Name < next.cfg.Name) {
			next = ln
		}
	}
	if next == nil {
		a.used--
		return
	}
	w := next.q[0]
	next.q = next.q[1:]
	a.queued--
	next.vt += w.cost / next.cfg.Weight
	close(w.granted) // slot transfers: used stays constant
}
