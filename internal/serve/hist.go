package serve

import (
	"sync"
	"time"
)

// Hist is a concurrency-safe log-bucketed latency histogram: buckets grow
// geometrically from 1µs, so quantiles carry a bounded relative error
// (~12%) at any scale from microseconds to minutes with a fixed, tiny
// footprint. The serving layer keeps one per outcome class; the bench
// layer reads p50/p99/p999 off it per load regime.
type Hist struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	max     time.Duration
	buckets [histBuckets]int64
}

const (
	histBuckets = 96
	histBase    = time.Microsecond
	// histGrowth is the per-bucket width multiplier: 1.25^96 spans 1µs to
	// ~27min.
	histGrowth = 1.25
)

// histBounds[i] is the inclusive upper bound of bucket i.
var histBounds = func() [histBuckets]time.Duration {
	var b [histBuckets]time.Duration
	f := float64(histBase)
	for i := range b {
		b[i] = time.Duration(f)
		f *= histGrowth
	}
	return b
}()

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	lo, hi := 0, histBuckets-1
	for lo < hi {
		mid := (lo + hi) / 2
		if histBounds[mid] >= d {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Observe records one latency sample.
func (h *Hist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	h.buckets[bucketOf(d)]++
	h.mu.Unlock()
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean of the recorded samples (0 when empty).
func (h *Hist) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Quantile returns the latency at quantile q in [0, 1] — the upper bound
// of the bucket holding the q·count-th sample, so the estimate errs
// conservatively (never under-reports a tail). Returns 0 when empty; q=1
// returns the exact observed maximum.
func (h *Hist) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q >= 1 {
		return h.max
	}
	if q < 0 {
		q = 0
	}
	rank := int64(q*float64(h.count-1)) + 1
	var seen int64
	for i, n := range h.buckets {
		seen += n
		if seen >= rank {
			if histBounds[i] > h.max {
				return h.max
			}
			return histBounds[i]
		}
	}
	return h.max
}

// Summary is a fixed quantile snapshot of one histogram.
type Summary struct {
	Count            int64
	Mean             time.Duration
	P50, P99, P999   time.Duration
	Max              time.Duration
}

// Summarize snapshots the standard serving quantiles.
func (h *Hist) Summarize() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Quantile(1),
	}
}
