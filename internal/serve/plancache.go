package serve

import (
	"sync"
	"time"

	"pref/internal/plan"
)

// planKey identifies one cached rewrite: the prepared query, the
// partitioning design it was rewritten against, and the data epoch it was
// built at. Epoch is part of the key so a write-path publish invalidates
// by construction — lookups under the new epoch simply miss, and stale
// entries age out; no explicit invalidation broadcast is needed.
type planKey struct {
	query  string
	design string
	epoch  int64
}

// planCache memoizes §2.2 rewrites across submissions. The rewrite is
// pure in (query, design), but the epoch rides in the key so cached plans
// never outlive the snapshot discipline: a plan is only reused for
// queries pinned to the same published epoch it was built under.
type planCache struct {
	mu      sync.Mutex
	entries map[planKey]*plan.Rewritten
	hits    int64
	misses  int64
}

func newPlanCache() *planCache {
	return &planCache{entries: make(map[planKey]*plan.Rewritten)}
}

// get returns the cached rewrite for the key, if present.
func (c *planCache) get(k planKey) (*plan.Rewritten, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rw, ok := c.entries[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return rw, ok
}

// put stores a rewrite and evicts entries of the same (query, design)
// built at older epochs — they can never be looked up again.
func (c *planCache) put(k planKey, rw *plan.Rewritten) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for old := range c.entries {
		if old.query == k.query && old.design == k.design && old.epoch < k.epoch {
			delete(c.entries, old)
		}
	}
	c.entries[k] = rw
}

// stats reports cumulative hit/miss counts and the live entry count.
func (c *planCache) stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}

// costTable prices queries for the shedder: an EWMA of observed execution
// latency per (query, design). Unlike the plan cache it is NOT keyed on
// epoch — pricing knowledge survives write-path publishes, so the shedder
// does not forget which queries are expensive every time data changes.
type costTable struct {
	mu    sync.Mutex
	costs map[[2]string]time.Duration
}

func newCostTable() *costTable {
	return &costTable{costs: make(map[[2]string]time.Duration)}
}

// costEWMAAlpha weights a new latency sample into the per-query price.
const costEWMAAlpha = 0.3

// price returns the current priced cost (0 = never executed).
func (t *costTable) price(query, design string) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.costs[[2]string{query, design}]
}

// observe feeds one execution latency into the query's price.
func (t *costTable) observe(query, design string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := [2]string{query, design}
	if cur, ok := t.costs[k]; ok {
		t.costs[k] = cur + time.Duration(costEWMAAlpha*float64(d-cur))
	} else {
		t.costs[k] = d
	}
}
