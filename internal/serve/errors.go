package serve

import (
	"errors"
	"fmt"
	"time"
)

// Sentinel errors of the serving layer's admission ladder, all matchable
// with errors.Is through the pref facade. Together with the engine's
// ErrDeadlineExceeded and the cluster's ErrAdmissionTimeout they form the
// complete rejection taxonomy: every query a server turns away fails with
// exactly one of these, never a silent drop.
var (
	// ErrQuotaExceeded reports a submission rejected by the tenant's
	// token-bucket quota (admission ladder rung 1).
	ErrQuotaExceeded = errors.New("serve: tenant quota exhausted")
	// ErrOverloaded reports a query shed by cost-priced overload
	// protection (rung 2): the server is saturated and the query's priced
	// cost exceeds what the current load allows. Cheap queries keep
	// flowing while expensive ones are turned away with a Retry-After
	// hint.
	ErrOverloaded = errors.New("serve: overloaded, query shed")
	// ErrServerClosed reports a submission against a server that is
	// draining or closed.
	ErrServerClosed = errors.New("serve: server closed")
	// ErrUnknownTenant reports a submission under a tenant the server was
	// not configured with.
	ErrUnknownTenant = errors.New("serve: unknown tenant")
	// ErrUnknownQuery reports a submission of a query name missing from
	// the server's prepared catalog.
	ErrUnknownQuery = errors.New("serve: unknown prepared query")
)

// RejectedError is the typed admission rejection: which rung of the
// ladder rejected the query, for whom, and — for rate and load rejections
// — when a retry is worth attempting. Unwrap yields the rung's sentinel
// (ErrQuotaExceeded, ErrOverloaded, cluster.ErrAdmissionTimeout,
// ErrServerClosed), so errors.Is works against both the concrete type and
// the sentinel.
type RejectedError struct {
	// Stage is the admission-ladder rung: "quota", "shed", "queue" or
	// "closed".
	Stage string
	// Tenant and Query identify the rejected submission.
	Tenant string
	Query  string
	// Cost is the priced cost of the query (shed rejections only): the
	// observed cost of earlier executions under the server's cost model.
	Cost time.Duration
	// RetryAfter hints when the client should retry: the token bucket's
	// next-token time for quota rejections, a load-scaled backoff for
	// shed and queue rejections. Zero means "do not bother" (closed).
	RetryAfter time.Duration
	err        error
}

func (e *RejectedError) Error() string {
	msg := fmt.Sprintf("serve: query %s of tenant %s rejected at %s rung", e.Query, e.Tenant, e.Stage)
	if e.Cost > 0 {
		msg += fmt.Sprintf(" (priced at %v)", e.Cost)
	}
	if e.RetryAfter > 0 {
		msg += fmt.Sprintf(", retry after %v", e.RetryAfter)
	}
	return msg + ": " + e.err.Error()
}

// Unwrap makes errors.Is match the rung's sentinel.
func (e *RejectedError) Unwrap() error { return e.err }
