package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"pref/internal/bulkload"
	"pref/internal/catalog"
	"pref/internal/cluster"
	"pref/internal/engine"
	"pref/internal/fault"
	"pref/internal/partition"
	"pref/internal/plan"
	"pref/internal/table"
	"pref/internal/testutil"
	"pref/internal/value"
)

// testServeDB builds a small two-table database: fact hash-partitioned on
// its key, dim replicated — enough for scans, aggregates, and write-path
// epoch rolls.
func testServeDB() (*table.Database, *partition.Config) {
	s := catalog.NewSchema("srv")
	s.MustAddTable(catalog.MustTable("fact",
		[]catalog.Column{{Name: "k", Kind: value.Int}, {Name: "d", Kind: value.Int}}, "k"))
	s.MustAddTable(catalog.MustTable("dim",
		[]catalog.Column{{Name: "d", Kind: value.Int}, {Name: "payload", Kind: value.Int}}, "d"))
	db := table.NewDatabase(s)
	for k := int64(0); k < 40; k++ {
		db.Tables["fact"].MustAppend(value.Tuple{k, k % 5})
	}
	for d := int64(0); d < 5; d++ {
		db.Tables["dim"].MustAppend(value.Tuple{d, 100 + d})
	}
	cfg := partition.NewConfig(4)
	cfg.SetHash("fact", "k")
	cfg.SetReplicated("dim")
	return db, cfg
}

func testQueries() map[string]func() plan.Node {
	return map[string]func() plan.Node{
		"count": func() plan.Node {
			return plan.Aggregate(plan.Scan("fact", "f"), nil,
				plan.Count("cnt"), plan.Sum(plan.Col("f.k"), "s"))
		},
		"scan": func() plan.Node { return plan.Scan("fact", "f") },
	}
}

// newTestServer builds a server over the fixture with optional overrides
// and closes it at test end.
func newTestServer(t *testing.T, mod func(*Options)) *Server {
	t.Helper()
	db, cfg := testServeDB()
	opt := Options{
		DB: db, Config: cfg, Queries: testQueries(),
		Tenants:      []TenantConfig{{Name: "a"}, {Name: "b", Weight: 3}},
		QueueTimeout: 2 * time.Second,
	}
	if mod != nil {
		mod(&opt)
	}
	s, err := NewServer(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(context.Background()) })
	return s
}

func TestSubmitBasic(t *testing.T) {
	s := newTestServer(t, nil)
	resp, err := s.Submit(context.Background(), "a", "count")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 1 {
		t.Fatalf("count rows = %d, want 1", len(resp.Rows))
	}
	if resp.Rows[0][0] != 40 {
		t.Fatalf("count = %v, want 40", resp.Rows[0][0])
	}
	if resp.Attempts != 1 || resp.CacheHit {
		t.Fatalf("attempts=%d cacheHit=%v, want 1/false on first execution", resp.Attempts, resp.CacheHit)
	}
	if m := s.Metrics(); m.Completed != 1 || m.Submitted != 1 {
		t.Fatalf("metrics = %+v, want 1 submitted, 1 completed", m)
	}
}

func TestUnknownTenantAndQuery(t *testing.T) {
	s := newTestServer(t, nil)
	if _, err := s.Submit(context.Background(), "ghost", "count"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant err = %v", err)
	}
	if _, err := s.Submit(context.Background(), "a", "nope"); !errors.Is(err, ErrUnknownQuery) {
		t.Fatalf("unknown query err = %v", err)
	}
}

func TestTokenBucket(t *testing.T) {
	b := &tokenBucket{rate: 2, burst: 2}
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := b.take(now); !ok {
			t.Fatalf("take %d within burst refused", i)
		}
	}
	ok, retry := b.take(now)
	if ok {
		t.Fatal("take beyond burst admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry-after = %v, want (0, 1s] at rate 2/s", retry)
	}
	if ok, _ := b.take(now.Add(600 * time.Millisecond)); !ok {
		t.Fatal("take after refill refused")
	}
}

// TestQuotaRejection pins rung 1: a rate-limited tenant's burst passes,
// the next submission is a typed quota rejection with a Retry-After hint,
// and the other tenant is unaffected.
func TestQuotaRejection(t *testing.T) {
	s := newTestServer(t, func(o *Options) {
		o.Tenants = []TenantConfig{{Name: "a", Rate: 0.5, Burst: 1}, {Name: "b"}}
	})
	if _, err := s.Submit(context.Background(), "a", "count"); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit(context.Background(), "a", "count")
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("err = %v, want ErrQuotaExceeded", err)
	}
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("err %T is not *RejectedError", err)
	}
	if rej.Stage != "quota" || rej.RetryAfter <= 0 {
		t.Fatalf("rejection = %+v, want quota stage with positive RetryAfter", rej)
	}
	if _, err := s.Submit(context.Background(), "b", "count"); err != nil {
		t.Fatalf("tenant b throttled by a's quota: %v", err)
	}
	if m := s.Metrics(); m.Rejected["quota"] != 1 {
		t.Fatalf("quota rejections = %d, want 1", m.Rejected["quota"])
	}
}

// TestWeightedFairAdmission pins rung 3: with one slot and both tenants
// saturating the queue, grants go 3:1 to the weight-3 tenant while both
// have work queued.
func TestWeightedFairAdmission(t *testing.T) {
	adm := newAdmitter(1, time.Minute, []TenantConfig{{Name: "a"}, {Name: "b", Weight: 3}})
	rel0, err := adm.acquire(context.Background(), "a", 1)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan string, 12)
	done := make(chan struct{})
	for i := 0; i < 12; i++ {
		tenant := "a"
		if i >= 6 {
			tenant = "b"
		}
		go func(tenant string) {
			rel, err := adm.acquire(context.Background(), tenant, 1)
			if err != nil {
				order <- "err:" + err.Error()
				done <- struct{}{}
				return
			}
			order <- tenant
			rel() // cascade: releasing grants the next waiter
			done <- struct{}{}
		}(tenant)
	}
	// All 12 must be queued before the cascade starts, or grant order
	// depends on goroutine scheduling.
	for start := time.Now(); ; {
		adm.mu.Lock()
		q := adm.queued
		adm.mu.Unlock()
		if q == 12 {
			break
		}
		if time.Since(start) > 5*time.Second {
			t.Fatalf("only %d of 12 waiters queued", q)
		}
		time.Sleep(time.Millisecond)
	}
	rel0()
	for i := 0; i < 12; i++ {
		<-done
	}
	close(order)
	var got []string
	for tn := range order {
		got = append(got, tn)
	}
	// While both tenants have waiters (the first 8 grants), weight-3 b
	// must receive 6 of 8; a's remaining 4 drain after b's queue empties.
	bFirst8 := 0
	for _, tn := range got[:8] {
		if tn == "b" {
			bFirst8++
		}
	}
	if bFirst8 != 6 {
		t.Fatalf("weight-3 tenant got %d of first 8 grants, want 6 (order %v)", bFirst8, got)
	}
}

func TestShedderPricing(t *testing.T) {
	sh := newShedder(1.5)
	// Below threshold everything passes, even expensive queries.
	if ok, _ := sh.admit(1.0, time.Hour); !ok {
		t.Fatal("query shed below threshold")
	}
	sh.observe(10 * time.Millisecond)
	// At load 2.0 (o=1/3) the allowance is ewma·2 = 20ms: cheap and
	// unknown-cost queries pass, expensive ones shed with a retry hint.
	if ok, _ := sh.admit(2.0, 5*time.Millisecond); !ok {
		t.Fatal("cheap query shed")
	}
	if ok, _ := sh.admit(2.0, 0); !ok {
		t.Fatal("unknown-cost query shed despite average pricing")
	}
	ok, retry := sh.admit(2.0, 100*time.Millisecond)
	if ok {
		t.Fatal("expensive query admitted at load 2.0")
	}
	if retry <= 0 {
		t.Fatalf("retry hint = %v, want positive", retry)
	}
	// Deeper overload shrinks the allowance toward zero: at o=1 even the
	// average query sheds.
	if ok, _ := sh.admit(3.0, 10*time.Millisecond); ok {
		t.Fatal("average query admitted at load 3.0")
	}
}

// TestShedExpensiveQueriesFirst pins rung 2 end to end: under overload
// the expensive prepared query is turned away with ErrOverloaded while
// the cheap one still queues.
func TestShedExpensiveQueriesFirst(t *testing.T) {
	s := newTestServer(t, func(o *Options) {
		o.MaxConcurrent = 1
		o.ShedThreshold = 1.2
	})
	// Price "scan" as expensive and set the pricing EWMA from history.
	s.costs.observe("scan", s.designSig, 200*time.Millisecond)
	s.shed.observe(10 * time.Millisecond)
	s.costs.observe("count", s.designSig, 5*time.Millisecond)

	// Hold the only slot with an undrained stream: load = 1.
	st, err := s.Stream(context.Background(), "a", "count")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Queue one more (load 2 > 1.2 once queued): submitted from a
	// goroutine since it blocks.
	queued := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, err := s.Submit(ctx, "a", "count")
		queued <- err
	}()
	for start := time.Now(); s.adm.load() < 2; {
		if time.Since(start) > 5*time.Second {
			t.Fatal("second query never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// The expensive query is shed with the typed error and a hint...
	_, err = s.Submit(context.Background(), "b", "scan")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expensive query err = %v, want ErrOverloaded", err)
	}
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Stage != "shed" || rej.RetryAfter <= 0 || rej.Cost != 200*time.Millisecond {
		t.Fatalf("rejection = %+v, want shed stage, positive RetryAfter, priced cost", err)
	}
	// ...while releasing the slot lets the cheap queued query finish.
	st.Close()
	if err := <-queued; err != nil {
		t.Fatalf("cheap queued query: %v", err)
	}
	if m := s.Metrics(); m.Rejected["shed"] != 1 {
		t.Fatalf("shed rejections = %d, want 1", m.Rejected["shed"])
	}
}

// TestQueueTimeout pins rung 3's bounded wait: a saturated server rejects
// queued queries after QueueTimeout with the cluster's admission-timeout
// sentinel.
func TestQueueTimeout(t *testing.T) {
	s := newTestServer(t, func(o *Options) {
		o.MaxConcurrent = 1
		o.QueueTimeout = 30 * time.Millisecond
		o.ShedThreshold = 100 // shedding out of the way
	})
	st, err := s.Stream(context.Background(), "a", "count")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, err = s.Submit(context.Background(), "b", "count")
	if !errors.Is(err, cluster.ErrAdmissionTimeout) {
		t.Fatalf("err = %v, want cluster.ErrAdmissionTimeout", err)
	}
	var rej *RejectedError
	if !errors.As(err, &rej) || rej.Stage != "queue" {
		t.Fatalf("rejection = %+v, want queue stage", err)
	}
}

// TestDeadlinePropagation pins the tentpole property end to end: a client
// deadline expiring mid-execution surfaces as engine.ErrDeadlineExceeded
// (with context.DeadlineExceeded still matchable underneath), not as a
// hang or an untyped error.
func TestDeadlinePropagation(t *testing.T) {
	s := newTestServer(t, func(o *Options) {
		o.FaultFor = func(seq int64, attempt int) *fault.Policy {
			return &fault.Policy{Seed: seq, StragglerProb: 1, StragglerDelay: 300 * time.Millisecond}
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := s.Submit(ctx, "a", "count")
	if !errors.Is(err, engine.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want engine.ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v does not unwrap to context.DeadlineExceeded", err)
	}
	if m := s.Metrics(); m.DeadlineExceeded != 1 {
		t.Fatalf("deadline metric = %d, want 1", m.DeadlineExceeded)
	}
}

// A deadline expiring while the query is queued (not executing) must
// surface the same typed error.
func TestDeadlineInQueue(t *testing.T) {
	s := newTestServer(t, func(o *Options) {
		o.MaxConcurrent = 1
		o.ShedThreshold = 100
	})
	st, err := s.Stream(context.Background(), "a", "count")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = s.Submit(ctx, "b", "count")
	if !errors.Is(err, engine.ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued deadline err = %v, want typed deadline", err)
	}
}

// TestPlanCacheEpochInvalidation is the satellite-4 property: cached
// plans are keyed on the published epoch, so a write-path publish makes
// them miss and fresh executions see the new data.
func TestPlanCacheEpochInvalidation(t *testing.T) {
	db, cfg := testServeDB()
	s := newTestServer(t, func(o *Options) {
		pdb, err := partition.Apply(db, cfg)
		if err != nil {
			t.Fatal(err)
		}
		o.DB, o.PDB = nil, pdb
	})
	ctx := context.Background()
	r1, err := s.Submit(ctx, "a", "count")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Submit(ctx, "a", "count")
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheHit || !r2.CacheHit {
		t.Fatalf("cache hits = %v,%v, want miss then hit", r1.CacheHit, r2.CacheHit)
	}

	// Publish a new epoch through the write path.
	l := bulkload.NewLoader(s.pdb, cfg)
	if err := l.Insert("fact", value.Tuple{int64(100), int64(1)}); err != nil {
		t.Fatal(err)
	}
	r3, err := s.Submit(ctx, "a", "count")
	if err != nil {
		t.Fatal(err)
	}
	if r3.CacheHit {
		t.Fatal("stale-epoch plan served from cache after publish")
	}
	if r3.Epoch <= r2.Epoch {
		t.Fatalf("epoch did not advance: %d -> %d", r2.Epoch, r3.Epoch)
	}
	if r3.Rows[0][0] != 41 {
		t.Fatalf("post-publish count = %v, want 41", r3.Rows[0][0])
	}
	// The superseded entry is evicted, not retained forever.
	if _, _, size := s.plans.stats(); size != 1 {
		t.Fatalf("plan cache holds %d entries, want 1 after epoch eviction", size)
	}
}

// TestRetryBudgetBoundsAmplification pins the anti-amplification
// property: under a total fault storm the server stops spending retries
// once the budget drains, instead of multiplying the storm.
func TestRetryBudgetBoundsAmplification(t *testing.T) {
	storm := map[int]int{0: 99, 1: 99, 2: 99, 3: 99}
	s := newTestServer(t, func(o *Options) {
		o.RetryBudget = 3
		o.RetryEarn = 0.1
		o.MaxAttempts = 3
		o.Cluster = cluster.Options{Nodes: 4, TripAfter: 1 << 30} // breakers out of the way
		o.FaultFor = func(seq int64, attempt int) *fault.Policy {
			return &fault.Policy{Seed: seq, FlakyNodes: storm}
		}
	})
	for i := 0; i < 10; i++ {
		if _, err := s.Submit(context.Background(), "a", "count"); err == nil {
			t.Fatal("query succeeded under total fault storm")
		}
	}
	m := s.Metrics()
	if m.Retries > 3 {
		t.Fatalf("spent %d retries with budget 3: retry amplification", m.Retries)
	}
	if m.RetryBudgetDenied == 0 {
		t.Fatal("budget never denied a retry under a 10-query storm")
	}
	if m.Failed != 10 {
		t.Fatalf("failed = %d, want 10 typed failures", m.Failed)
	}
}

// TestStreamBackpressure pins the delivery contract: the producer runs at
// most buffer+1 chunks ahead of the consumer, and the serving slot is
// held until the stream drains.
func TestStreamBackpressure(t *testing.T) {
	s := newTestServer(t, func(o *Options) {
		o.ChunkRows = 4
		o.StreamBuffer = 1
	})
	st, err := s.Stream(context.Background(), "a", "scan")
	if err != nil {
		t.Fatal(err)
	}
	// 40 rows in chunks of 4 = 10 chunks; with buffer 1 the producer
	// cannot be done while nothing was consumed.
	time.Sleep(50 * time.Millisecond)
	if st.complete.Load() {
		t.Fatal("producer ran ahead of an idle consumer: no backpressure")
	}
	if used := func() int { s.adm.mu.Lock(); defer s.adm.mu.Unlock(); return s.adm.used }(); used != 1 {
		t.Fatalf("serving slots used = %d while stream undelivered, want 1", used)
	}
	resp, err := st.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 40 {
		t.Fatalf("drained %d rows, want 40", len(resp.Rows))
	}
	for start := time.Now(); ; {
		used := func() int { s.adm.mu.Lock(); defer s.adm.mu.Unlock(); return s.adm.used }()
		if used == 0 {
			break
		}
		if time.Since(start) > time.Second {
			t.Fatalf("slot not released after drain (used=%d)", used)
		}
		time.Sleep(time.Millisecond)
	}
}

// An abandoned stream must release its slot when the query deadline
// fires, even though the consumer never calls Close.
func TestAbandonedStreamReleasedByDeadline(t *testing.T) {
	s := newTestServer(t, func(o *Options) { o.ChunkRows = 4; o.StreamBuffer = 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := s.Stream(ctx, "a", "scan"); err != nil {
		t.Fatal(err)
	}
	// No Close, no Drain: the deadline must clean up.
	for start := time.Now(); ; {
		used := func() int { s.adm.mu.Lock(); defer s.adm.mu.Unlock(); return s.adm.used }()
		if used == 0 {
			break
		}
		if time.Since(start) > 2*time.Second {
			t.Fatalf("abandoned stream still holds %d slots after deadline", used)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGracefulDrain pins Close's contract: in-flight queries finish,
// new submissions get the typed closed rejection, and no goroutine of the
// server survives.
func TestGracefulDrain(t *testing.T) {
	verifyLeaks := testutil.CheckGoroutineLeaks(t)
	s := newTestServer(t, func(o *Options) {
		o.FaultFor = func(seq int64, attempt int) *fault.Policy {
			return &fault.Policy{Seed: seq, StragglerProb: 1, StragglerDelay: 50 * time.Millisecond}
		}
	})
	results := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := s.Submit(context.Background(), "a", "count")
			results <- err
		}()
	}
	// Let them pass admission before draining.
	time.Sleep(20 * time.Millisecond)
	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("graceful close: %v", err)
	}
	if _, err := s.Submit(context.Background(), "a", "count"); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("post-close submit err = %v, want ErrServerClosed", err)
	}
	for i := 0; i < 4; i++ {
		if err := <-results; err != nil {
			t.Fatalf("in-flight query killed by graceful drain: %v", err)
		}
	}
	verifyLeaks()
}

// TestForcedDrain pins the other half: when the drain context expires,
// in-flight queries are cancelled, Close still joins everything, and no
// goroutine leaks.
func TestForcedDrain(t *testing.T) {
	verifyLeaks := testutil.CheckGoroutineLeaks(t)
	s := newTestServer(t, func(o *Options) {
		o.FaultFor = func(seq int64, attempt int) *fault.Policy {
			return &fault.Policy{Seed: seq, StragglerProb: 1, StragglerDelay: 10 * time.Second}
		}
	})
	result := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), "a", "count")
		result <- err
	}()
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := s.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced close err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("forced drain waited for the straggler instead of cancelling it")
	}
	if err := <-result; err == nil {
		t.Fatal("query survived a forced drain")
	}
	verifyLeaks()
}

func TestHistQuantiles(t *testing.T) {
	var h Hist
	if h.Quantile(0.99) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not zero")
	}
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	sum := h.Summarize()
	if sum.Count != 1000 {
		t.Fatalf("count = %d", sum.Count)
	}
	if sum.Max != 1000*time.Millisecond {
		t.Fatalf("max = %v, want exact 1s", sum.Max)
	}
	// Log buckets guarantee the quantile errs high by at most the bucket
	// growth factor.
	check := func(name string, got, exact time.Duration) {
		t.Helper()
		if got < exact || float64(got) > float64(exact)*histGrowth {
			t.Fatalf("%s = %v, want within [%v, %v·%v)", name, got, exact, exact, histGrowth)
		}
	}
	check("p50", sum.P50, 500*time.Millisecond)
	check("p99", sum.P99, 990*time.Millisecond)
	check("p999", sum.P999, 999*time.Millisecond)
	if sum.Mean < 400*time.Millisecond || sum.Mean > 600*time.Millisecond {
		t.Fatalf("mean = %v, want ~500ms", sum.Mean)
	}
}
