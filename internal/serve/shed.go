package serve

import (
	"sync"
	"time"
)

// shedder implements cost-priced load shedding (admission ladder rung 2).
// Below the load threshold every query passes. Above it, the shedder
// computes an overload fraction o in (0, 1] and admits only queries whose
// priced cost fits the shrinking allowance ewmaCost·(1−o)/o: as pressure
// rises the allowance tightens smoothly, so cheap queries keep flowing
// while expensive ones are turned away first — the opposite of FIFO
// collapse, where one expensive query at the head stalls everything
// behind it.
type shedder struct {
	mu        sync.Mutex
	threshold float64 // load above which shedding starts (e.g. 1.0)
	ewma      float64 // EWMA of admitted query cost, seconds
}

// shedEWMAAlpha weights new cost samples into the running mean; ~20
// samples of history keeps the allowance stable across one noisy query.
const shedEWMAAlpha = 0.05

func newShedder(threshold float64) *shedder {
	if threshold <= 0 {
		threshold = 1
	}
	return &shedder{threshold: threshold}
}

// observe feeds the cost of a completed query into the pricing EWMA.
func (s *shedder) observe(cost time.Duration) {
	sec := cost.Seconds()
	s.mu.Lock()
	if s.ewma == 0 {
		s.ewma = sec
	} else {
		s.ewma += shedEWMAAlpha * (sec - s.ewma)
	}
	s.mu.Unlock()
}

// admit decides whether a query priced at cost may pass at the given
// load. Unknown costs (zero) are priced at the EWMA — an unpriced query
// is assumed average, so the first execution of each query is neither
// free nor penalized. On refusal it returns a load-scaled Retry-After.
func (s *shedder) admit(load float64, cost time.Duration) (bool, time.Duration) {
	if load <= s.threshold {
		return true, 0
	}
	s.mu.Lock()
	ewma := s.ewma
	s.mu.Unlock()
	if ewma == 0 {
		// Nothing has completed yet; nothing to price against.
		return true, 0
	}
	sec := cost.Seconds()
	if sec == 0 {
		sec = ewma
	}
	// Overload fraction: how far past the threshold we are, normalized so
	// o→1 as load→2·threshold and beyond.
	o := (load - s.threshold) / s.threshold
	if o > 1 {
		o = 1
	}
	allowance := ewma * (1 - o) / o
	if sec <= allowance {
		return true, 0
	}
	// Retry once roughly the excess queue depth has drained.
	retry := time.Duration((load - s.threshold) * ewma * float64(time.Second))
	if retry < 5*time.Millisecond {
		retry = 5 * time.Millisecond
	}
	if retry > 5*time.Second {
		retry = 5 * time.Second
	}
	return false, retry
}

// retryBudget bounds retry amplification across the whole server: each
// success earns a fraction of a retry token, each retry spends one. Under
// a fault storm most queries fail, the budget drains, and the server
// stops retrying — first attempts still flow, but the storm is not
// multiplied by the retry layer.
type retryBudget struct {
	mu      sync.Mutex
	tokens  float64
	cap     float64
	earn    float64 // tokens earned per successful first attempt
}

func newRetryBudget(cap, earn float64) *retryBudget {
	if cap <= 0 {
		cap = 10
	}
	if earn <= 0 {
		earn = 0.1
	}
	return &retryBudget{tokens: cap, cap: cap, earn: earn}
}

// credit records a successful attempt, earning fractional retry tokens.
func (b *retryBudget) credit() {
	b.mu.Lock()
	b.tokens += b.earn
	if b.tokens > b.cap {
		b.tokens = b.cap
	}
	b.mu.Unlock()
}

// spend attempts to take one retry token; refusal means the retry budget
// is exhausted and the caller must surface the failure instead of
// retrying.
func (b *retryBudget) spend() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
