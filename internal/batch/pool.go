package batch

import (
	"sync"
	"sync/atomic"
)

// colPool recycles Size-capacity column vectors. Pooling is per-column, not
// per-batch, so batches of any width draw from the same arena.
var colPool = sync.Pool{
	New: func() any { return make([]int64, 0, Size) },
}

// get returns a dense batch with width empty pooled columns, each with
// capacity Size.
func get(width int) *Batch {
	b := &Batch{Cols: make([][]int64, width), pooled: 1}
	for c := range b.Cols {
		b.Cols[c] = colPool.Get().([]int64)[:0]
	}
	return b
}

// Release returns a pooled batch's columns to the arena. Only call on
// batches whose columns no caller will read again; view batches (zero-copy
// over storage) are a no-op. Release is idempotent and safe to race with
// itself: the pooled flag is claimed with a compare-and-swap, so when
// shared batch lists (broadcast, one-copy gather) are swept from more than
// one place, exactly one sweep recycles the columns and the rest are
// no-ops that never touch Cols.
func (b *Batch) Release() {
	if b == nil || !atomic.CompareAndSwapUint32(&b.pooled, 1, 0) {
		return
	}
	for c := range b.Cols {
		if cap(b.Cols[c]) == Size {
			colPool.Put(b.Cols[c][:0])
		}
		b.Cols[c] = nil
	}
	b.Sel = nil
}

// ReleaseAll releases every batch in the list.
func ReleaseAll(bs []*Batch) {
	for _, b := range bs {
		b.Release()
	}
}
