package batch

import (
	"math/rand"
	"testing"

	"pref/internal/plan"
	"pref/internal/value"
)

// boundarySizes are the row counts most likely to expose off-by-one bugs in
// chunking and selection handling.
var boundarySizes = []int{0, 1, Size - 1, Size, Size + 1, 3*Size + 17}

// randRows generates n random rows of the given width with NULLs sprinkled
// in, values drawn from a small domain so predicates hit.
func randRows(rng *rand.Rand, n, width int) []value.Tuple {
	rows := make([]value.Tuple, n)
	for i := range rows {
		t := make(value.Tuple, width)
		for c := range t {
			if rng.Intn(8) == 0 {
				t[c] = plan.Null
			} else {
				t[c] = int64(rng.Intn(9) - 4)
			}
		}
		rows[i] = t
	}
	return rows
}

// colsOf transposes rows into column vectors.
func colsOf(rows []value.Tuple, width int) [][]int64 {
	cols := make([][]int64, width)
	for c := range cols {
		cols[c] = make([]int64, len(rows))
		for i, r := range rows {
			cols[c][i] = r[c]
		}
	}
	return cols
}

// randSel returns either nil or a random ascending selection over n rows.
func randSel(rng *rand.Rand, n int) []int32 {
	if n == 0 || rng.Intn(3) == 0 {
		return nil
	}
	var sel []int32
	for i := 0; i < n; i++ {
		if rng.Intn(3) > 0 {
			sel = append(sel, int32(i))
		}
	}
	return sel
}

// applySel materializes the row view a selection induces.
func applySel(rows []value.Tuple, sel []int32) []value.Tuple {
	if sel == nil {
		return rows
	}
	out := make([]value.Tuple, len(sel))
	for i, p := range sel {
		out[i] = rows[p]
	}
	return out
}

func tuplesEqual(a, b []value.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for c := range a[i] {
			if a[i][c] != b[i][c] {
				return false
			}
		}
	}
	return true
}

// TestRoundTripBoundaries pins FromRows → AppendRows as the identity at
// every boundary size.
func TestRoundTripBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range boundarySizes {
		rows := randRows(rng, n, 4)
		bs := FromRows(rows, 4)
		if got := Rows(bs); got != n {
			t.Fatalf("n=%d: Rows=%d", n, got)
		}
		for _, b := range bs {
			if b.Len() > Size {
				t.Fatalf("n=%d: batch over capacity: %d", n, b.Len())
			}
		}
		back := AppendRows(nil, bs)
		if !tuplesEqual(back, rows) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

// TestChunksBoundaries pins the zero-copy chunking: same rows, batches
// share storage with the source columns.
func TestChunksBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range boundarySizes {
		rows := randRows(rng, n, 3)
		cols := colsOf(rows, 3)
		bs := Chunks(cols)
		back := AppendRows(nil, bs)
		if !tuplesEqual(back, rows) {
			t.Fatalf("n=%d: chunk round trip mismatch", n)
		}
		if n > 0 && &bs[0].Cols[0][0] != &cols[0][0] {
			t.Fatalf("n=%d: chunk copied instead of viewing", n)
		}
	}
}

// TestFilterMatchesRowEngine drives random predicates over random batches
// (with and without incoming selections) and checks the kernel against the
// plan.Bind row closure — the row engine's exact semantics.
func TestFilterMatchesRowEngine(t *testing.T) {
	sch := plan.Schema{
		{Name: "a", Kind: value.Int},
		{Name: "b", Kind: value.Money},
		{Name: "c", Kind: value.Int},
	}
	rng := rand.New(rand.NewSource(3))
	genExpr := func() plan.ValExpr {
		switch rng.Intn(3) {
		case 0:
			return plan.Col([]string{"a", "b", "c"}[rng.Intn(3)])
		case 1:
			return plan.Lit(int64(rng.Intn(9) - 4))
		default:
			return plan.F("s", value.Int, []string{"a", "c"}, func(v []int64) int64 { return v[0] + v[1] })
		}
	}
	var genPred func(d int) plan.BoolExpr
	genPred = func(d int) plan.BoolExpr {
		if d <= 0 {
			return plan.Cmp(genExpr(), plan.CmpOp(rng.Intn(6)), genExpr())
		}
		switch rng.Intn(5) {
		case 0:
			return plan.And(genPred(d-1), genPred(d-1))
		case 1:
			return plan.Or(genPred(d-1), genPred(d-1))
		case 2:
			return plan.Not(genPred(d - 1))
		case 3:
			return plan.In("b", int64(rng.Intn(3)-1), int64(rng.Intn(3)-1))
		default:
			return plan.Cmp(genExpr(), plan.CmpOp(rng.Intn(6)), genExpr())
		}
	}

	for trial := 0; trial < 120; trial++ {
		p := genPred(rng.Intn(3))
		bound, err := p.Bind(sch)
		if err != nil {
			t.Fatalf("bind: %v", err)
		}
		vp, err := plan.CompilePred(p, sch)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		n := boundarySizes[rng.Intn(len(boundarySizes))]
		rows := randRows(rng, n, len(sch))
		sel := randSel(rng, n)
		b := View(colsOf(rows, len(sch))).WithSel(sel)

		var want []value.Tuple
		for _, r := range applySel(rows, sel) {
			if bound(r) {
				want = append(want, r)
			}
		}
		got := AppendRows(nil, []*Batch{Filter(b, vp)})
		if !tuplesEqual(got, want) {
			t.Fatalf("trial %d (%s, n=%d, sel=%v): filter kernel disagrees with row engine: got %d rows want %d",
				trial, p, n, sel != nil, len(got), len(want))
		}
		// Input batch must be untouched (ownership rule).
		if !tuplesEqual(applySel(rows, sel), AppendRows(nil, []*Batch{b})) {
			t.Fatalf("trial %d: Filter mutated its input", trial)
		}
	}
}

// TestProjectMatchesRowEngine checks the projection kernel (column picks,
// literals, computed funcs) against Bind closures.
func TestProjectMatchesRowEngine(t *testing.T) {
	sch := plan.Schema{{Name: "x", Kind: value.Int}, {Name: "y", Kind: value.Int}}
	exprs := []plan.ValExpr{
		plan.Col("y"),
		plan.Lit(7),
		plan.F("d", value.Int, []string{"x", "y"}, func(v []int64) int64 { return v[0] - v[1] }),
		plan.Col("x"),
	}
	bounds := make([]func(value.Tuple) int64, len(exprs))
	vexprs := make([]*plan.VExpr, len(exprs))
	for i, e := range exprs {
		var err error
		if bounds[i], err = e.Bind(sch); err != nil {
			t.Fatalf("bind: %v", err)
		}
		if vexprs[i], err = plan.CompileExpr(e, sch); err != nil {
			t.Fatalf("compile: %v", err)
		}
	}
	rng := rand.New(rand.NewSource(4))
	for _, n := range boundarySizes {
		rows := randRows(rng, n, len(sch))
		sel := randSel(rng, n)
		b := View(colsOf(rows, len(sch))).WithSel(sel)
		var want []value.Tuple
		for _, r := range applySel(rows, sel) {
			out := make(value.Tuple, len(exprs))
			for i := range exprs {
				out[i] = bounds[i](r)
			}
			want = append(want, out)
		}
		out := Project(b, vexprs)
		got := AppendRows(nil, []*Batch{out})
		if !tuplesEqual(got, want) {
			t.Fatalf("n=%d: projection kernel disagrees with row engine", n)
		}
		out.Release()
	}
}

// TestKeyAndHashParity pins KeyBuf/HashRow to value.MakeKey/value.HashTuple
// byte for byte.
func TestKeyAndHashParity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := randRows(rng, 500, 5)
	sel := randSel(rng, 500)
	b := View(colsOf(rows, 5)).WithSel(sel)
	cols := []int{3, 0, 2}
	kb := NewKeyBuf(len(cols))
	live := applySel(rows, sel)
	for i, r := range live {
		kb.Encode(b, i, cols)
		if kb.Key() != value.MakeKey(r, cols) {
			t.Fatalf("row %d: key mismatch", i)
		}
		if HashRow(b, i, cols) != value.HashTuple(r, cols) {
			t.Fatalf("row %d: hash mismatch", i)
		}
	}
	// Probe must find keys inserted via the row-side encoding.
	m := map[value.Key][]int32{}
	for i, r := range live {
		m[value.MakeKey(r, cols)] = append(m[value.MakeKey(r, cols)], int32(i))
	}
	for i := range live {
		kb.Encode(b, i, cols)
		if _, ok := kb.Probe(m); !ok {
			t.Fatalf("row %d: probe missed its own key", i)
		}
	}
}

// TestWriterAppendPair exercises the join-emit path, including left-outer
// null padding, across a batch boundary.
func TestWriterAppendPair(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	lrows := randRows(rng, Size+5, 2)
	rrows := randRows(rng, Size+5, 3)
	l := View(colsOf(lrows, 2))
	r := View(colsOf(rrows, 3))
	w := NewWriter(5)
	var want []value.Tuple
	for i := 0; i < l.Len(); i++ {
		if i%3 == 0 {
			w.AppendPair(l, i, nil, 0, plan.Null)
			want = append(want, append(append(value.Tuple{}, lrows[i]...), plan.Null, plan.Null, plan.Null))
		} else {
			w.AppendPair(l, i, r, i, plan.Null)
			want = append(want, append(append(value.Tuple{}, lrows[i]...), rrows[i]...))
		}
	}
	got := AppendRows(nil, w.Finish())
	if !tuplesEqual(got, want) {
		t.Fatal("AppendPair output mismatch")
	}
}

// TestPoolRecycling checks Release returns columns that get() can reuse
// without corrupting previously finished batches.
func TestPoolRecycling(t *testing.T) {
	w := NewWriter(2)
	for i := 0; i < 10; i++ {
		w.AppendTuple([]int64{int64(i), int64(-i)})
	}
	bs := w.Finish()
	snapshot := AppendRows(nil, bs) // deep copy via shim
	ReleaseAll(bs)
	// Churn the pool.
	for i := 0; i < 50; i++ {
		b := get(3)
		for c := range b.Cols {
			b.Cols[c] = append(b.Cols[c], 99, 98, 97)
		}
		b.Release()
	}
	for i, r := range snapshot {
		if r[0] != int64(i) || r[1] != int64(-i) {
			t.Fatalf("row %d corrupted after pool churn: %v", i, r)
		}
	}
	if bs[0].Len() != 0 {
		t.Fatal("released batch still reports rows")
	}
}

// TestWriterBoundaries pins Writer chunking at every boundary size.
func TestWriterBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range boundarySizes {
		rows := randRows(rng, n, 3)
		w := NewWriter(3)
		src := View(colsOf(rows, 3))
		for i := 0; i < n; i++ {
			w.AppendFrom(src, i)
		}
		if w.Len() != n {
			t.Fatalf("n=%d: writer Len=%d", n, w.Len())
		}
		got := AppendRows(nil, w.Finish())
		if !tuplesEqual(got, rows) {
			t.Fatalf("n=%d: writer round trip mismatch", n)
		}
	}
}
