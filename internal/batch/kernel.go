package batch

import (
	"encoding/binary"

	"pref/internal/plan"
	"pref/internal/value"
)

// Kernels: the tight inner loops of the vectorized operators. Each kernel
// takes batches in, produces selection vectors or fresh pooled batches out,
// and never writes through its input's columns.
//
// Semantics are pinned to the row engine: comparisons run on the raw
// encoded int64 payloads (even Float columns — the row engine compares bit
// patterns in filters too), NULL operands fail every comparison, and keys
// and hashes are byte-identical to value.MakeKey / value.HashTuple.

// Filter narrows b to rows satisfying p, returning a new batch sharing b's
// columns under a fresh selection vector. The common shapes — column vs
// literal comparison and conjunctions of them — run as type-specialized
// column loops; everything else falls back to the compiled row evaluator.
func Filter(b *Batch, p *plan.VPred) *Batch {
	n := b.Len()
	if n == 0 {
		return b.WithSel(nil)
	}
	sel := make([]int32, 0, n)
	sel = appendSelected(sel, b, p)
	return b.WithSel(sel)
}

// appendSelected appends the physical indexes of b's live rows that satisfy
// p. It dispatches to fused fast paths where the predicate shape allows.
func appendSelected(sel []int32, b *Batch, p *plan.VPred) []int32 {
	// Fast path 1: single column-vs-literal comparison.
	if col, op, lit, ok := colLitCmp(p); ok {
		return selCmpLit(sel, b, col, op, lit)
	}
	// Fast path 2: conjunction — evaluate the first leg with the fast path,
	// then narrow the survivors with the remaining legs row-at-a-time.
	if p.Op == plan.VAnd && len(p.Kids) > 0 {
		if col, op, lit, ok := colLitCmp(p.Kids[0]); ok {
			first := selCmpLit(nil, b, col, op, lit)
			if len(p.Kids) == 1 {
				return append(sel, first...)
			}
			rest := &plan.VPred{Op: plan.VAnd, Kids: p.Kids[1:]}
			scratch := scratchFor(rest)
			row := make([]int64, b.Width())
			for _, phys := range first {
				for c, colv := range b.Cols {
					row[c] = colv[phys]
				}
				if rest.EvalRow(row, scratch) {
					sel = append(sel, phys)
				}
			}
			return sel
		}
	}
	// General path: compiled row evaluator over the live rows.
	scratch := scratchFor(p)
	row := make([]int64, b.Width())
	n := b.Len()
	for i := 0; i < n; i++ {
		phys := i
		if b.Sel != nil {
			phys = int(b.Sel[i])
		}
		for c, colv := range b.Cols {
			row[c] = colv[phys]
		}
		if p.EvalRow(row, scratch) {
			sel = append(sel, int32(phys))
		}
	}
	return sel
}

func scratchFor(p *plan.VPred) []int64 {
	if n := p.MaxFuncArgs(); n > 0 {
		return make([]int64, n)
	}
	return nil
}

// colLitCmp recognizes the `column <op> literal` shape (either operand
// order; the column side must be non-NULL-producing VCol).
func colLitCmp(p *plan.VPred) (col int, op plan.CmpOp, lit int64, ok bool) {
	if p.Op != plan.VCmp {
		return 0, 0, 0, false
	}
	if p.L.Op == plan.VCol && p.R.Op == plan.VLit {
		return p.L.Col, p.Cmp, p.R.Lit, true
	}
	if p.L.Op == plan.VLit && p.R.Op == plan.VCol {
		if flipped, can := flipCmp(p.Cmp); can {
			return p.R.Col, flipped, p.L.Lit, true
		}
	}
	return 0, 0, 0, false
}

// flipCmp rewrites `lit <op> col` as `col <op'> lit`.
func flipCmp(op plan.CmpOp) (plan.CmpOp, bool) {
	switch op {
	case plan.EQ:
		return plan.EQ, true
	case plan.NE:
		return plan.NE, true
	case plan.LT:
		return plan.GT, true
	case plan.LE:
		return plan.GE, true
	case plan.GT:
		return plan.LT, true
	case plan.GE:
		return plan.LE, true
	}
	return op, false
}

// selCmpLit is the hot filter loop: one column against one literal, one
// branch-per-operator dispatch outside the loop. A NULL literal selects
// nothing (matching the row engine: NULL comparisons are false).
func selCmpLit(sel []int32, b *Batch, col int, op plan.CmpOp, lit int64) []int32 {
	if lit == plan.Null {
		return sel
	}
	c := b.Cols[col]
	if b.Sel == nil {
		switch op {
		case plan.EQ:
			for i, v := range c {
				if v == lit {
					sel = append(sel, int32(i))
				}
			}
		case plan.NE:
			for i, v := range c {
				if v != lit && v != plan.Null {
					sel = append(sel, int32(i))
				}
			}
		case plan.LT:
			for i, v := range c {
				if v < lit && v != plan.Null {
					sel = append(sel, int32(i))
				}
			}
		case plan.LE:
			for i, v := range c {
				if v <= lit && v != plan.Null {
					sel = append(sel, int32(i))
				}
			}
		case plan.GT:
			for i, v := range c {
				if v > lit {
					sel = append(sel, int32(i))
				}
			}
		case plan.GE:
			for i, v := range c {
				if v >= lit {
					sel = append(sel, int32(i))
				}
			}
		}
		return sel
	}
	for _, phys := range b.Sel {
		if cmpKeep(c[phys], op, lit) {
			sel = append(sel, phys)
		}
	}
	return sel
}

// cmpKeep applies one encoded comparison with NULL-fails semantics.
// plan.Null is math.MinInt64, so v > lit and v >= lit can never spuriously
// admit it (lit itself is checked non-NULL by the caller); the other
// operators need the explicit guard.
func cmpKeep(v int64, op plan.CmpOp, lit int64) bool {
	if v == plan.Null {
		return false
	}
	switch op {
	case plan.EQ:
		return v == lit
	case plan.NE:
		return v != lit
	case plan.LT:
		return v < lit
	case plan.LE:
		return v <= lit
	case plan.GT:
		return v > lit
	default:
		return v >= lit
	}
}

// Project evaluates exprs over b's live rows into a fresh dense pooled
// batch. Pure column picks copy with a single gather loop per output
// column; computed expressions fall back to the compiled row evaluator.
func Project(b *Batch, exprs []*plan.VExpr) *Batch {
	n := b.Len()
	out := get(len(exprs))
	for c := range out.Cols {
		out.Cols[c] = grow(out.Cols[c], n)
	}
	var row, scratch []int64
	for c, e := range exprs {
		dst := out.Cols[c]
		switch e.Op {
		case plan.VCol:
			src := b.Cols[e.Col]
			if b.Sel == nil {
				copy(dst, src[:n])
			} else {
				for i, phys := range b.Sel {
					dst[i] = src[phys]
				}
			}
		case plan.VLit:
			for i := range dst {
				dst[i] = e.Lit
			}
		default:
			if row == nil {
				row = make([]int64, b.Width())
			}
			if len(scratch) < len(e.Cols) {
				scratch = make([]int64, len(e.Cols))
			}
			for i := 0; i < n; i++ {
				out.Cols[c][i] = e.EvalRow(b.Row(i, row), scratch)
			}
		}
	}
	return out
}

// grow returns s resized to n, reallocating only when capacity is short.
func grow(s []int64, n int) []int64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int64, n)
}

// Int64Table is an open-addressed hash table from int64 join keys to chains
// of row ids — the single-column equi-join build side. Equal-key rows chain
// in ascending row order (Head then Next), matching the candidate order the
// row engine's append-built lists produce, so emit order is identical.
// Probes are a fibonacci-hash plus linear scan over a flat int32 slot
// array: no per-row allocation, no map overhead.
type Int64Table struct {
	keys  []int64 // the build column, borrowed from the caller
	slots []int32 // row id + 1; 0 = empty
	next  []int32 // next[i] = next row with keys[i]'s key, -1 = end
	mask  uint64
	shift uint
}

const fib64 = 0x9E3779B97F4A7C15

// BuildInt64Table indexes keys (one per build row). The slice is retained,
// not copied; the caller must keep it immutable while probing.
func BuildInt64Table(keys []int64) *Int64Table {
	n := len(keys)
	size := 8
	for size < 2*n {
		size <<= 1
	}
	log2 := 0
	for 1<<log2 < size {
		log2++
	}
	t := &Int64Table{
		keys:  keys,
		slots: make([]int32, size),
		next:  make([]int32, n),
		mask:  uint64(size - 1),
		shift: uint(64 - log2),
	}
	// Insert in reverse row order, prepending to each key's chain, so a
	// forward walk visits rows ascending.
	for i := n - 1; i >= 0; i-- {
		k := keys[i]
		h := (uint64(k) * fib64) >> t.shift
		for {
			s := t.slots[h]
			if s == 0 {
				t.next[i] = -1
				t.slots[h] = int32(i) + 1
				break
			}
			if t.keys[s-1] == k {
				t.next[i] = s - 1
				t.slots[h] = int32(i) + 1
				break
			}
			h = (h + 1) & t.mask
		}
	}
	return t
}

// Head returns the first build row with key k, if any.
func (t *Int64Table) Head(k int64) (int32, bool) {
	h := (uint64(k) * fib64) >> t.shift
	for {
		s := t.slots[h]
		if s == 0 {
			return 0, false
		}
		if t.keys[s-1] == k {
			return s - 1, true
		}
		h = (h + 1) & t.mask
	}
}

// Next returns the build row chained after i, if any.
func (t *Int64Table) Next(i int32) (int32, bool) {
	if n := t.next[i]; n >= 0 {
		return n, true
	}
	return 0, false
}

// KeyBuf is a reusable composite-key buffer for allocation-free map probes:
// EncodeKey fills it, and m[value.Key(kb.buf)] probes without interning the
// string (the Go compiler elides the conversion's copy for map index
// expressions).
type KeyBuf struct {
	buf []byte
}

// NewKeyBuf sizes a key buffer for nCols key columns.
func NewKeyBuf(nCols int) *KeyBuf { return &KeyBuf{buf: make([]byte, 8*nCols)} }

// Encode fills the buffer with the composite key of live row i of b over
// cols, byte-identical to value.MakeKey on the materialized row.
func (kb *KeyBuf) Encode(b *Batch, i int, cols []int) {
	phys := i
	if b.Sel != nil {
		phys = int(b.Sel[i])
	}
	for j, c := range cols {
		binary.LittleEndian.PutUint64(kb.buf[j*8:], uint64(b.Cols[c][phys]))
	}
}

// Probe indexes m with the current buffer contents without allocating.
func (kb *KeyBuf) Probe(m map[value.Key][]int32) ([]int32, bool) {
	v, ok := m[value.Key(kb.buf)]
	return v, ok
}

// Key interns the current buffer contents as an owned value.Key (allocates;
// use for map insertion).
func (kb *KeyBuf) Key() value.Key { return value.Key(string(kb.buf)) }

// HashRow hashes the key columns of live row i of b, identical to
// value.HashTuple on the materialized row.
func HashRow(b *Batch, i int, cols []int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	phys := i
	if b.Sel != nil {
		phys = int(b.Sel[i])
	}
	h := uint64(offset64)
	for _, c := range cols {
		v := uint64(b.Cols[c][phys])
		for s := 0; s < 64; s += 8 {
			h ^= (v >> uint(s)) & 0xff
			h *= prime64
		}
	}
	return h
}
