package batch

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestWriterExactSizeBatches pins the chunk boundary: a writer fed a
// multiple of Size rows emits exactly that many full batches and no empty
// trailer, whether the rows arrive tuple-at-a-time or batch-at-a-time.
func TestWriterExactSizeBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, batches := range []int{1, 2} {
		n := batches * Size
		rows := randRows(rng, n, 2)
		src := View(colsOf(rows, 2))

		w := NewWriter(2)
		for i := 0; i < n; i++ {
			w.AppendFrom(src, i)
		}
		out := w.Finish()
		if len(out) != batches {
			t.Fatalf("n=%d rows: got %d batches, want %d", n, len(out), batches)
		}
		for i, b := range out {
			if b.Len() != Size {
				t.Fatalf("n=%d rows: batch %d has %d rows, want %d", n, i, b.Len(), Size)
			}
		}
		ReleaseAll(out)

		w = NewWriter(2)
		w.AppendBatch(src)
		out = w.Finish()
		if len(out) != batches {
			t.Fatalf("AppendBatch n=%d rows: got %d batches, want %d", n, len(out), batches)
		}
		if !tuplesEqual(AppendRows(nil, out), rows) {
			t.Fatalf("AppendBatch n=%d rows: round trip mismatch", n)
		}
		ReleaseAll(out)
	}
}

// TestWriterEmptyInputs feeds zero-row batches through every append path:
// nothing may be emitted, and a writer that only ever saw empty input
// finishes with no batches rather than one empty one.
func TestWriterEmptyInputs(t *testing.T) {
	emptyDense := View([][]int64{{}, {}})
	emptySel := View([][]int64{{1, 2}, {3, 4}}).WithSel([]int32{})

	w := NewWriter(2)
	w.AppendBatch(emptyDense)
	w.AppendBatch(emptySel)
	if w.Len() != 0 {
		t.Fatalf("writer Len=%d after empty appends, want 0", w.Len())
	}
	if out := w.Finish(); len(out) != 0 {
		t.Fatalf("Finish after empty appends: got %d batches, want none", len(out))
	}

	// Empty batches interleaved with real rows contribute nothing.
	w = NewWriter(2)
	w.AppendBatch(emptyDense)
	w.AppendTuple([]int64{7, 8})
	w.AppendBatch(emptySel)
	out := w.Finish()
	if rows := AppendRows(nil, out); len(rows) != 1 || rows[0][0] != 7 || rows[0][1] != 8 {
		t.Fatalf("interleaved empties: got rows %v", rows)
	}
	ReleaseAll(out)

	// AppendRows skips empty batches in the list.
	if rows := AppendRows(nil, []*Batch{emptyDense, emptySel}); len(rows) != 0 {
		t.Fatalf("AppendRows over empty batches: got %v", rows)
	}
}

// TestReleaseIdempotent pins the header contract the engine's shared-list
// sweeps rely on: releasing a batch twice is a no-op the second time, and
// releasing a view never touches the pool.
func TestReleaseIdempotent(t *testing.T) {
	w := NewWriter(1)
	w.AppendTuple([]int64{42})
	bs := w.Finish()
	b := bs[0]
	b.Release()
	if b.Len() != 0 || atomic.LoadUint32(&b.pooled) != 0 {
		t.Fatal("released batch still live")
	}
	b.Release() // second release: must not double-recycle
	ReleaseAll(bs)

	v := View([][]int64{{1, 2, 3}})
	v.Release()
	if v.Cols == nil || len(v.Cols[0]) != 3 {
		t.Fatal("releasing a view must not drop its storage")
	}
}

// TestConcurrentRelease races two sweeps over the same shared batch list,
// the broadcast/one-copy-gather shape. Run under -race: the CAS on the
// pooled flag must make the double sweep safe, with exactly one winner
// recycling each header.
func TestConcurrentRelease(t *testing.T) {
	for round := 0; round < 100; round++ {
		w := NewWriter(2)
		for i := 0; i < 3*Size+5; i++ {
			w.AppendTuple([]int64{int64(i), int64(-i)})
		}
		shared := w.Finish()
		var wg sync.WaitGroup
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ReleaseAll(shared)
			}()
		}
		wg.Wait()
		for i, b := range shared {
			if atomic.LoadUint32(&b.pooled) != 0 || b.Len() != 0 {
				t.Fatalf("round %d: batch %d survived the concurrent sweep", round, i)
			}
		}
	}
}
