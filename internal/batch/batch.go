// Package batch is the columnar substrate of the vectorized engine: fixed
// column vectors of int64-encoded values (the value package's universal
// encoding — dates as day numbers, money as cents, strings as dictionary
// codes, floats as IEEE-754 bit patterns), processed ~1k rows at a time.
//
// A Batch is a window over per-column arrays plus an optional selection
// vector. Operators never mutate a batch they received as input: a filter
// narrows by allocating a fresh selection vector over the same columns, a
// projection writes into a new (pooled) batch. This batch-ownership rule is
// what lets a scan hand out zero-copy views of table storage — the same
// arrays every concurrent query reads — and is pinned by the
// batchownership lint analyzer.
//
// Column vectors for materialized (non-view) batches come from a sync.Pool
// arena keyed to the default batch capacity, so steady-state execution
// recycles its working set instead of growing per-row garbage.
package batch

import (
	"pref/internal/value"
)

// Size is the default logical batch capacity: small enough that a batch's
// working set (a handful of columns × 8 bytes × Size) stays cache-resident,
// large enough to amortize per-batch dispatch.
const Size = 1024

// Batch is one unit of columnar execution: Width column vectors of equal
// physical length, with an optional selection vector choosing the live
// rows. Cols hold int64-encoded values (see package value). A nil Sel means
// every physical row is live, in storage order.
type Batch struct {
	// Cols are the column vectors; all have the same length. They may be
	// shared, zero-copy, with table storage or with an upstream batch —
	// never write through them unless this batch owns its columns.
	Cols [][]int64
	// Sel is the selection vector: indexes of live physical rows in
	// ascending order. nil selects all rows.
	Sel []int32
	// pooled marks batches whose column backing came from the pool (safe
	// to recycle via Release). It is 1 or 0 and flipped with an atomic
	// compare-and-swap: broadcast and one-copy gather share *Batch
	// pointers across partition slots, so two sweeps may race to release
	// the same header — exactly one wins and recycles the columns.
	pooled uint32
}

// Len reports the number of live (selected) rows.
func (b *Batch) Len() int {
	if b == nil {
		return 0
	}
	if b.Sel != nil {
		return len(b.Sel)
	}
	if len(b.Cols) == 0 {
		return 0
	}
	return len(b.Cols[0])
}

// Width reports the number of columns.
func (b *Batch) Width() int { return len(b.Cols) }

// At returns the value of column c at live row i (selection applied).
func (b *Batch) At(i, c int) int64 {
	if b.Sel != nil {
		return b.Cols[c][b.Sel[i]]
	}
	return b.Cols[c][i]
}

// Row copies live row i into dst (len ≥ Width), returning the slice.
func (b *Batch) Row(i int, dst []int64) []int64 {
	dst = dst[:b.Width()]
	phys := i
	if b.Sel != nil {
		phys = int(b.Sel[i])
	}
	for c, col := range b.Cols {
		dst[c] = col[phys]
	}
	return dst
}

// View returns a zero-copy batch over externally owned column vectors
// (e.g. table storage). The caller promises the arrays are immutable for
// the batch's lifetime.
func View(cols [][]int64) *Batch { return &Batch{Cols: cols} }

// WithSel returns a new batch over the same columns narrowed to sel. The
// receiver is not modified (batch-ownership rule: narrowing allocates a
// new header, never rewrites a shared one).
func (b *Batch) WithSel(sel []int32) *Batch {
	return &Batch{Cols: b.Cols, Sel: sel}
}

// Chunks splits a view over n physical rows into ⌈n/Size⌉ zero-copy
// batches of at most Size rows each, preserving row order.
func Chunks(cols [][]int64) []*Batch {
	if len(cols) == 0 || len(cols[0]) == 0 {
		return nil
	}
	n := len(cols[0])
	out := make([]*Batch, 0, (n+Size-1)/Size)
	for off := 0; off < n; off += Size {
		end := off + Size
		if end > n {
			end = n
		}
		sub := make([][]int64, len(cols))
		for c := range cols {
			// Capacity is deliberately left unclamped: sibling chunks stay
			// recognizably contiguous, so Flatten can reassemble them
			// zero-copy. Safe because operators never append through a
			// received batch's columns (batch-ownership rule).
			sub[c] = cols[c][off:end]
		}
		out = append(out, &Batch{Cols: sub})
	}
	return out
}

// Rows sums the live rows of a batch list.
func Rows(bs []*Batch) int {
	n := 0
	for _, b := range bs {
		n += b.Len()
	}
	return n
}

// FromRows builds one dense batch per Size-row window of rows, copying the
// tuple values into pooled column vectors. The inverse of AppendRows.
func FromRows(rows []value.Tuple, width int) []*Batch {
	if len(rows) == 0 {
		return nil
	}
	var out []*Batch
	w := NewWriter(width)
	for _, r := range rows {
		w.AppendTuple(r)
	}
	return append(out, w.Finish()...)
}

// AppendRows materializes every live row of bs as value.Tuple rows appended
// to dst — the row shim at the Result boundary and at the retained
// row-operator seams (top-k sort, final-aggregate merge).
func AppendRows(dst []value.Tuple, bs []*Batch) []value.Tuple {
	total := Rows(bs)
	if cap(dst)-len(dst) < total {
		grown := make([]value.Tuple, len(dst), len(dst)+total)
		copy(grown, dst)
		dst = grown
	}
	// One backing allocation for the whole list when the widths agree
	// (the common case: every batch is one operator's output), sliced
	// into tuples — sparse lists of small views would otherwise pay a
	// make per batch.
	uniform := true
	for _, b := range bs {
		if b.Len() > 0 && b.Width() != bs[0].Width() {
			uniform = false
			break
		}
	}
	var shared []int64
	if uniform && total > 0 {
		shared = make([]int64, total*bs[0].Width())
	}
	for _, b := range bs {
		w := b.Width()
		n := b.Len()
		if n == 0 {
			continue
		}
		flat := shared
		if flat == nil {
			flat = make([]int64, n*w)
		} else {
			flat, shared = shared[:n*w], shared[n*w:]
		}
		// Dense batches transpose row-major (sequential writes, one read
		// stream per column); selective batches go column-major — the
		// per-column gather is a single strided read stream the hardware
		// prefetcher can follow, where row-major would hop across every
		// column per selected row.
		if b.Sel == nil {
			for i := 0; i < n; i++ {
				row := flat[i*w : i*w+w]
				for c, col := range b.Cols {
					row[c] = col[i]
				}
			}
		} else {
			for c, col := range b.Cols {
				for i, phys := range b.Sel {
					flat[i*w+c] = col[phys]
				}
			}
		}
		for i := 0; i < n; i++ {
			dst = append(dst, value.Tuple(flat[i*w:(i+1)*w:(i+1)*w]))
		}
	}
	return dst
}

// Flatten compacts a batch list into one dense batch of the given width,
// preserving row order — the shape hash-join builds index with a single
// int32 per row. A lone dense batch passes through zero-copy.
func Flatten(bs []*Batch, width int) *Batch {
	if len(bs) == 1 && bs[0].Sel == nil && bs[0].Width() == width {
		return bs[0]
	}
	n := Rows(bs)
	if f := contiguous(bs, width, n); f != nil {
		return f
	}
	flat := make([]int64, n*width)
	cols := make([][]int64, width)
	for c := range cols {
		cols[c] = flat[c*n : (c+1)*n : (c+1)*n]
	}
	off := 0
	for _, b := range bs {
		bn := b.Len()
		for c := 0; c < width && c < len(b.Cols); c++ {
			src, dst := b.Cols[c], cols[c]
			if b.Sel == nil {
				copy(dst[off:off+bn], src[:bn])
			} else {
				for i, phys := range b.Sel {
					dst[off+i] = src[phys]
				}
			}
		}
		off += bn
	}
	return &Batch{Cols: cols}
}

// contiguous reassembles, zero-copy, a batch list whose chunks are adjacent
// windows over one backing array — the shape Chunks hands out for storage
// scans. Each column of batch k must start exactly where batch k-1's ends,
// verified by element address, and the first chunk's capacity must reach
// the full n rows. Returns nil when the list isn't such a sequence.
func contiguous(bs []*Batch, width, n int) *Batch {
	if len(bs) == 0 || n == 0 {
		return nil
	}
	for _, b := range bs {
		if b.Sel != nil || b.Width() != width || b.Len() == 0 {
			return nil
		}
	}
	cols := make([][]int64, width)
	for c := 0; c < width; c++ {
		if cap(bs[0].Cols[c]) < n {
			return nil
		}
		ext := bs[0].Cols[c][:n]
		off := len(bs[0].Cols[c])
		for _, b := range bs[1:] {
			if &ext[off] != &b.Cols[c][0] {
				return nil
			}
			off += len(b.Cols[c])
		}
		cols[c] = ext
	}
	return &Batch{Cols: cols}
}

// Writer accumulates rows into dense pooled batches of at most Size rows,
// preserving append order.
type Writer struct {
	width int
	cur   *Batch
	n     int
	done  []*Batch
}

// NewWriter opens a writer for batches of the given width.
func NewWriter(width int) *Writer { return &Writer{width: width} }

func (w *Writer) room() *Batch {
	if w.cur == nil || w.n == Size {
		w.flush()
		w.cur = get(w.width)
	}
	return w.cur
}

func (w *Writer) flush() {
	if w.cur == nil {
		return
	}
	for c := range w.cur.Cols {
		w.cur.Cols[c] = w.cur.Cols[c][:w.n]
	}
	if w.n > 0 {
		w.done = append(w.done, w.cur)
	} else {
		w.cur.Release()
	}
	w.cur = nil
	w.n = 0
}

// AppendTuple appends one row given as a flat tuple.
func (w *Writer) AppendTuple(t []int64) {
	b := w.room()
	for c := range b.Cols {
		b.Cols[c] = append(b.Cols[c], t[c])
	}
	w.n++
}

// AppendFrom appends live row i of src (selection applied). Columns beyond
// src's width are zero-filled; src columns beyond the writer's width are
// dropped.
func (w *Writer) AppendFrom(src *Batch, i int) {
	b := w.room()
	phys := i
	if src.Sel != nil {
		phys = int(src.Sel[i])
	}
	for c := range b.Cols {
		var v int64
		if c < len(src.Cols) {
			v = src.Cols[c][phys]
		}
		b.Cols[c] = append(b.Cols[c], v)
	}
	w.n++
}

// AppendPair appends the concatenation of live row li of l and physical
// row rphys of r — the join-emit fast path. r may be nil: the right half
// is filled with the given null value (left-outer padding).
func (w *Writer) AppendPair(l *Batch, li int, r *Batch, rphys int, null int64) {
	b := w.room()
	lw := l.Width()
	lphys := li
	if l.Sel != nil {
		lphys = int(l.Sel[li])
	}
	for c := 0; c < lw && c < len(b.Cols); c++ {
		b.Cols[c] = append(b.Cols[c], l.Cols[c][lphys])
	}
	for c := lw; c < len(b.Cols); c++ {
		var v int64
		if r != nil {
			v = r.Cols[c-lw][rphys]
		} else {
			v = null
		}
		b.Cols[c] = append(b.Cols[c], v)
	}
	w.n++
}

// AppendPairs appends len(li) concatenated pair rows column-wise: output
// row k is physical left row li[k] joined to physical right row ri[k] (or
// null-padded when ri[k] < 0). The column-major gather touches one column
// vector at a time instead of interleaving every column per row — the
// hash-join emit fast path.
func (w *Writer) AppendPairs(l *Batch, li []int32, r *Batch, ri []int32, null int64) {
	lw := l.Width()
	for off := 0; off < len(li); {
		b := w.room()
		take := len(li) - off
		if room := Size - w.n; take > room {
			take = room
		}
		// Reslicing the destination to len(sub) lets the compiler drop the
		// per-element bounds checks on both slices; only the data-dependent
		// source index keeps its check.
		lsub := li[off : off+take]
		rsub := ri[off : off+take]
		for c := 0; c < lw && c < len(b.Cols); c++ {
			col := b.Cols[c][w.n : w.n+take]
			col = col[:len(lsub)]
			src := l.Cols[c]
			for k, p := range lsub {
				col[k] = src[p]
			}
			b.Cols[c] = b.Cols[c][:w.n+take]
		}
		for c := lw; c < len(b.Cols); c++ {
			col := b.Cols[c][w.n : w.n+take]
			col = col[:len(rsub)]
			src := r.Cols[c-lw]
			for k, p := range rsub {
				if p >= 0 {
					col[k] = src[p]
				} else {
					col[k] = null
				}
			}
			b.Cols[c] = b.Cols[c][:w.n+take]
		}
		w.n += take
		off += take
	}
}

// AppendBatch appends every live row of src in order: dense sources copy
// column-wise, selective sources gather through their selection vector —
// the compaction path that turns a long list of sparse views into a few
// dense batches.
func (w *Writer) AppendBatch(src *Batch) {
	if src.Sel != nil {
		w.AppendGather(src, src.Sel)
		return
	}
	n := src.Len()
	for off := 0; off < n; {
		b := w.room()
		take := n - off
		if room := Size - w.n; take > room {
			take = room
		}
		for c := range b.Cols {
			col := b.Cols[c][:w.n+take]
			if c < len(src.Cols) {
				copy(col[w.n:], src.Cols[c][off:off+take])
			} else {
				for k := 0; k < take; k++ {
					col[w.n+k] = 0
				}
			}
			b.Cols[c] = col
		}
		w.n += take
		off += take
	}
}

// AppendGather appends the physical rows idx of src column-wise (the
// semi/anti-join emit fast path). Columns beyond src's width are
// zero-filled.
func (w *Writer) AppendGather(src *Batch, idx []int32) {
	for off := 0; off < len(idx); {
		b := w.room()
		take := len(idx) - off
		if room := Size - w.n; take > room {
			take = room
		}
		sub := idx[off : off+take]
		for c := range b.Cols {
			col := b.Cols[c][w.n : w.n+take]
			col = col[:len(sub)]
			if c < len(src.Cols) {
				sc := src.Cols[c]
				for k, p := range sub {
					col[k] = sc[p]
				}
			} else {
				for k := range col {
					col[k] = 0
				}
			}
			b.Cols[c] = b.Cols[c][:w.n+take]
		}
		w.n += take
		off += take
	}
}

// Len reports the rows appended so far.
func (w *Writer) Len() int { return Rows(w.done) + w.n }

// Finish seals the writer and returns the accumulated batches.
func (w *Writer) Finish() []*Batch {
	w.flush()
	out := w.done
	w.done = nil
	return out
}
