package table

import (
	"sync"
	"testing"

	"pref/internal/value"
)

// TestColumnsProjection pins the columnar layout: table columns in schema
// order, then dup and hasRef decoded to 0/1.
func TestColumnsProjection(t *testing.T) {
	p := NewPartition()
	p.Append(value.Tuple{1, 10}, false, true)
	p.Append(value.Tuple{2, 20}, true, false)
	p.Append(value.Tuple{3, 30}, true, true)

	c := p.Columns(2)
	if c.NRows != 3 || len(c.Cols) != 4 {
		t.Fatalf("shape: NRows=%d cols=%d", c.NRows, len(c.Cols))
	}
	wantCols := [][]int64{{1, 2, 3}, {10, 20, 30}, {0, 1, 1}, {1, 0, 1}}
	for j, want := range wantCols {
		for i, v := range want {
			if c.Cols[j][i] != v {
				t.Fatalf("col %d row %d: got %d want %d", j, i, c.Cols[j][i], v)
			}
		}
	}
}

// TestColumnsCacheInvalidation checks the cache is reused while the
// partition is stable, rebuilt after an append, and not shared by clones.
func TestColumnsCacheInvalidation(t *testing.T) {
	p := NewPartition()
	p.Append(value.Tuple{1}, false, false)
	c1 := p.Columns(1)
	if p.Columns(1) != c1 {
		t.Fatal("stable partition rebuilt its projection")
	}

	clone := p.Clone()
	clone.Append(value.Tuple{2}, false, false)
	cc := clone.Columns(1)
	if cc == c1 || cc.NRows != 2 {
		t.Fatalf("clone projection wrong: same=%v NRows=%d", cc == c1, cc.NRows)
	}
	if got := p.Columns(1); got != c1 || got.NRows != 1 {
		t.Fatal("original projection disturbed by clone append")
	}

	p.Append(value.Tuple{3}, true, false)
	c2 := p.Columns(1)
	if c2 == c1 || c2.NRows != 2 || c2.Cols[0][1] != 3 || c2.Cols[1][1] != 1 {
		t.Fatal("append did not invalidate the projection")
	}

	// Width change also rebuilds (defense in depth for schema drift).
	if w := p.Columns(2); len(w.Cols) != 4 {
		t.Fatalf("width rebuild: %d cols", len(w.Cols))
	}
}

// TestColumnsConcurrent hammers first-build from many goroutines; -race
// validates the atomic publication.
func TestColumnsConcurrent(t *testing.T) {
	p := NewPartition()
	for i := 0; i < 5000; i++ {
		p.Append(value.Tuple{int64(i), int64(i * 2)}, i%3 == 0, i%2 == 0)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := p.Columns(2)
			for i := 0; i < 5000; i++ {
				if c.Cols[0][i] != int64(i) {
					t.Errorf("row %d corrupted", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}
