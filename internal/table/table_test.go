package table

import (
	"testing"

	"pref/internal/catalog"
	"pref/internal/value"
)

func meta(t *testing.T) *catalog.Table {
	t.Helper()
	return catalog.MustTable("t", []catalog.Column{{Name: "a", Kind: value.Int}, {Name: "b", Kind: value.Int}}, "a")
}

func TestDataAppend(t *testing.T) {
	d := NewData(meta(t))
	if err := d.Append(value.Tuple{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(value.Tuple{1}); err == nil {
		t.Fatal("arity mismatch must error")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestPartitionBitmaps(t *testing.T) {
	p := NewPartition()
	p.Append(value.Tuple{1, 10}, false, true)
	p.Append(value.Tuple{1, 10}, true, true)
	p.Append(value.Tuple{2, 20}, false, false)
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	if p.Dup.Count() != 1 {
		t.Fatalf("dup count = %d", p.Dup.Count())
	}
	if p.HasRef.Count() != 2 {
		t.Fatalf("hasRef count = %d", p.HasRef.Count())
	}
	if !p.Dup.Get(1) || p.Dup.Get(0) || p.Dup.Get(2) {
		t.Fatal("dup bits wrong")
	}
}

func TestPartitionedCounts(t *testing.T) {
	pt := NewPartitioned(meta(t), 3)
	pt.OriginalRows = 2
	pt.Parts[0].Append(value.Tuple{1, 10}, false, true)
	pt.Parts[1].Append(value.Tuple{1, 10}, true, true)
	pt.Parts[2].Append(value.Tuple{2, 20}, false, true)
	if pt.StoredRows() != 3 {
		t.Fatalf("StoredRows = %d", pt.StoredRows())
	}
	if pt.DuplicateRows() != 1 {
		t.Fatalf("DuplicateRows = %d", pt.DuplicateRows())
	}
	if got := pt.Redundancy(); got != 0.5 {
		t.Fatalf("Redundancy = %v, want 0.5", got)
	}
}

func TestRedundancyZeroOriginal(t *testing.T) {
	pt := NewPartitioned(meta(t), 2)
	if pt.Redundancy() != 0 {
		t.Fatal("empty table redundancy should be 0")
	}
}

func TestDatabaseRedundancy(t *testing.T) {
	s := catalog.NewSchema("s")
	m := catalog.MustTable("t", []catalog.Column{{Name: "a", Kind: value.Int}}, "a")
	s.MustAddTable(m)
	db := NewDatabase(s)
	if db.Tables["t"] == nil {
		t.Fatal("database should pre-create table data")
	}
	db.Tables["t"].MustAppend(value.Tuple{1})
	db.Tables["t"].MustAppend(value.Tuple{2})
	if db.TotalRows() != 2 {
		t.Fatalf("TotalRows = %d", db.TotalRows())
	}

	pdb := &PartitionedDatabase{Schema: s, Tables: map[string]*Partitioned{}, N: 2}
	pt := NewPartitioned(m, 2)
	pt.OriginalRows = 2
	pt.Parts[0].Append(value.Tuple{1}, false, true)
	pt.Parts[1].Append(value.Tuple{1}, true, true)
	pt.Parts[1].Append(value.Tuple{2}, false, true)
	pt.Parts[0].Append(value.Tuple{2}, true, true)
	pdb.Tables["t"] = pt
	if pdb.TotalStoredRows() != 4 {
		t.Fatalf("TotalStoredRows = %d", pdb.TotalStoredRows())
	}
	if got := pdb.DataRedundancy(); got != 1.0 {
		t.Fatalf("DataRedundancy = %v, want 1.0 (each tuple stored twice)", got)
	}
}
