package table

import (
	"testing"

	"pref/internal/catalog"
	"pref/internal/value"
)

func meta(t *testing.T) *catalog.Table {
	t.Helper()
	return catalog.MustTable("t", []catalog.Column{{Name: "a", Kind: value.Int}, {Name: "b", Kind: value.Int}}, "a")
}

func TestDataAppend(t *testing.T) {
	d := NewData(meta(t))
	if err := d.Append(value.Tuple{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(value.Tuple{1}); err == nil {
		t.Fatal("arity mismatch must error")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestPartitionBitmaps(t *testing.T) {
	p := NewPartition()
	p.Append(value.Tuple{1, 10}, false, true)
	p.Append(value.Tuple{1, 10}, true, true)
	p.Append(value.Tuple{2, 20}, false, false)
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	if p.Dup.Count() != 1 {
		t.Fatalf("dup count = %d", p.Dup.Count())
	}
	if p.HasRef.Count() != 2 {
		t.Fatalf("hasRef count = %d", p.HasRef.Count())
	}
	if !p.Dup.Get(1) || p.Dup.Get(0) || p.Dup.Get(2) {
		t.Fatal("dup bits wrong")
	}
}

func TestPartitionedCounts(t *testing.T) {
	pt := NewPartitioned(meta(t), 3)
	pt.OriginalRows = 2
	pt.Parts[0].Append(value.Tuple{1, 10}, false, true)
	pt.Parts[1].Append(value.Tuple{1, 10}, true, true)
	pt.Parts[2].Append(value.Tuple{2, 20}, false, true)
	if pt.StoredRows() != 3 {
		t.Fatalf("StoredRows = %d", pt.StoredRows())
	}
	if pt.DuplicateRows() != 1 {
		t.Fatalf("DuplicateRows = %d", pt.DuplicateRows())
	}
	if got := pt.Redundancy(); got != 0.5 {
		t.Fatalf("Redundancy = %v, want 0.5", got)
	}
}

func TestRedundancyZeroOriginal(t *testing.T) {
	pt := NewPartitioned(meta(t), 2)
	if pt.Redundancy() != 0 {
		t.Fatal("empty table redundancy should be 0")
	}
}

func TestDatabaseRedundancy(t *testing.T) {
	s := catalog.NewSchema("s")
	m := catalog.MustTable("t", []catalog.Column{{Name: "a", Kind: value.Int}}, "a")
	s.MustAddTable(m)
	db := NewDatabase(s)
	if db.Tables["t"] == nil {
		t.Fatal("database should pre-create table data")
	}
	db.Tables["t"].MustAppend(value.Tuple{1})
	db.Tables["t"].MustAppend(value.Tuple{2})
	if db.TotalRows() != 2 {
		t.Fatalf("TotalRows = %d", db.TotalRows())
	}

	pdb := &PartitionedDatabase{Schema: s, Tables: map[string]*Partitioned{}, N: 2}
	pt := NewPartitioned(m, 2)
	pt.OriginalRows = 2
	pt.Parts[0].Append(value.Tuple{1}, false, true)
	pt.Parts[1].Append(value.Tuple{1}, true, true)
	pt.Parts[1].Append(value.Tuple{2}, false, true)
	pt.Parts[0].Append(value.Tuple{2}, true, true)
	pdb.Tables["t"] = pt
	if pdb.TotalStoredRows() != 4 {
		t.Fatalf("TotalStoredRows = %d", pdb.TotalStoredRows())
	}
	if got := pdb.DataRedundancy(); got != 1.0 {
		t.Fatalf("DataRedundancy = %v, want 1.0 (each tuple stored twice)", got)
	}
}

func TestCheckInvariants(t *testing.T) {
	p := NewPartition()
	p.Append(value.Tuple{1, 10}, false, true)
	p.Append(value.Tuple{2, 20}, true, false)
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("intact partition: %v", err)
	}
	// A torn write: row appended without its bitmap entries.
	p.Rows = append(p.Rows, value.Tuple{3, 30})
	if err := p.CheckInvariants(); err == nil {
		t.Fatal("torn partition must fail CheckInvariants")
	}
	if err := (&Partition{}).CheckInvariants(); err == nil {
		t.Fatal("nil bitmaps must fail CheckInvariants")
	}
}

func TestSnapshotPinsEpoch(t *testing.T) {
	pt := NewPartitioned(meta(t), 2)
	pt.Parts[0].Append(value.Tuple{1, 10}, false, false)
	pt.OriginalRows = 1

	v0 := pt.Snapshot()
	if v0.Epoch != 0 || len(v0.Parts) != 2 || v0.Parts[0].Len() != 1 || v0.Rows != 1 {
		t.Fatalf("epoch 0 snapshot wrong: %+v", v0)
	}
	if pt.Snapshot() != v0 {
		t.Fatal("repeated Snapshot must return the same pinned version")
	}

	// Copy-on-write: mutating through BeginWrite must not disturb v0.
	part := pt.BeginWrite(0)
	if part == v0.Parts[0] {
		t.Fatal("BeginWrite returned the published partition object")
	}
	part.Append(value.Tuple{2, 20}, false, false)
	pt.OriginalRows++
	if v0.Parts[0].Len() != 1 {
		t.Fatal("published epoch mutated by a head write")
	}
	// Unpublished head mutations are invisible until Publish.
	if pt.Snapshot().Parts[0].Len() != 1 {
		t.Fatal("snapshot observed unpublished head state")
	}

	if e := pt.Publish(); e != 1 {
		t.Fatalf("Publish epoch = %d, want 1", e)
	}
	v1 := pt.Snapshot()
	if v1.Epoch != 1 || v1.Parts[0].Len() != 2 || v1.Rows != 2 {
		t.Fatalf("epoch 1 snapshot wrong: %+v", v1)
	}
	if v0.Parts[0].Len() != 1 || v0.Epoch != 0 {
		t.Fatal("old pinned version changed after Publish")
	}
	// BeginWrite on the same partition clones again (it is shared with v1).
	if pt.BeginWrite(0) == v1.Parts[0] {
		t.Fatal("post-publish BeginWrite must clone the shared partition")
	}
}

func TestResetToPublishedRepairsTornHead(t *testing.T) {
	pt := NewPartitioned(meta(t), 2)
	pt.Parts[0].Append(value.Tuple{1, 10}, false, false)
	pt.OriginalRows = 1
	pt.Snapshot() // anchor epoch 0

	// Tear the head: one partition gets a row without bitmap entries, the
	// other a fully applied row — a mid-fan-out crash.
	p0 := pt.BeginWrite(0)
	p0.Rows = append(p0.Rows, value.Tuple{9, 90})
	p1 := pt.BeginWrite(1)
	p1.Append(value.Tuple{8, 80}, false, false)
	pt.OriginalRows = 7
	if p0.CheckInvariants() == nil {
		t.Fatal("setup: head should be torn")
	}

	if discarded := pt.ResetToPublished(); discarded != 3 {
		t.Fatalf("discarded = %d, want 3 head rows in diverged partitions", discarded)
	}
	if pt.Parts[0].Len() != 1 || pt.Parts[1].Len() != 0 || pt.OriginalRows != 1 {
		t.Fatal("rollback did not restore the published state")
	}
	for p := range pt.Parts {
		if err := pt.Parts[p].CheckInvariants(); err != nil {
			t.Fatalf("partition %d after rollback: %v", p, err)
		}
	}
}

func TestDatabaseCommitIsAtomic(t *testing.T) {
	s := catalog.NewSchema("s")
	m := catalog.MustTable("t", []catalog.Column{{Name: "a", Kind: value.Int}}, "a")
	s.MustAddTable(m)
	pdb := &PartitionedDatabase{Schema: s, Tables: map[string]*Partitioned{}, N: 2}
	pdb.Tables["t"] = NewPartitioned(m, 2)

	s0 := pdb.Snapshot()
	if s0.Epoch != 0 || s0.Tables["t"] == nil {
		t.Fatalf("initial snapshot wrong: %+v", s0)
	}
	pdb.Tables["t"].BeginWrite(0).Append(value.Tuple{1}, false, false)
	if e := pdb.Commit("t"); e != 1 {
		t.Fatalf("Commit epoch = %d, want 1", e)
	}
	s1 := pdb.Snapshot()
	if s1.Epoch != 1 || len(s1.Parts("t")[0].Rows) != 1 {
		t.Fatal("snapshot after commit missing the published write")
	}
	if len(s0.Parts("t")[0].Rows) != 0 {
		t.Fatal("pre-commit snapshot observed the write")
	}
	if s0.Parts("missing") != nil {
		t.Fatal("Parts of unknown table must be nil")
	}
}
