package table

// Columnar is the cached column-major projection of one partition: one
// int64 vector per table column, followed by the dup and hasRef bitmap
// indexes decoded to 0/1 vectors. The vectorized scan hands these vectors
// to the engine as zero-copy batch views, so building the projection once
// per published partition amortizes the row→column transpose across every
// query that reads the epoch.
type Columnar struct {
	// Cols holds width+2 vectors of equal length: the table columns in
	// schema order, then dup, then hasRef. Immutable after construction.
	Cols [][]int64
	// NRows is the partition row count the projection was built from.
	NRows int
}

// ReplaceContents overwrites p's rows and bitmap indexes with np's and
// drops any cached columnar projection. The write path uses it instead of
// copying the struct, which would copy the projection cache (and its
// atomics) onto content it was not built from.
func (p *Partition) ReplaceContents(np *Partition) {
	p.Rows = np.Rows
	p.Dup = np.Dup
	p.HasRef = np.HasRef
	p.cols.Store(nil)
}

// Columns returns the partition's columnar projection for a table of the
// given width, building and caching it on first use.
//
// Safe for concurrent readers on frozen partitions — the only partitions a
// query can reach through a DBSnapshot, since the write path clones shared
// partitions (BeginWrite) before mutating and Clone starts with an empty
// cache. Concurrent first calls may build duplicate projections; the last
// store wins and both are valid, so no mutex is needed. As defense in
// depth, a cached projection whose shape no longer matches the partition
// is rebuilt rather than returned.
func (p *Partition) Columns(width int) *Columnar {
	if c := p.cols.Load(); c != nil && c.NRows == len(p.Rows) && len(c.Cols) == width+2 {
		return c
	}
	n := len(p.Rows)
	c := &Columnar{NRows: n, Cols: make([][]int64, width+2)}
	// One backing array for the whole projection keeps it contiguous and
	// halves allocator metadata for wide tables.
	flat := make([]int64, n*(width+2))
	for j := range c.Cols {
		c.Cols[j] = flat[j*n : (j+1)*n : (j+1)*n]
	}
	for i, r := range p.Rows {
		for j := 0; j < width && j < len(r); j++ {
			c.Cols[j][i] = r[j]
		}
		if p.Dup.Get(i) {
			c.Cols[width][i] = 1
		}
		if p.HasRef.Get(i) {
			c.Cols[width+1][i] = 1
		}
	}
	p.cols.Store(c)
	return c
}
