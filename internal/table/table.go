// Package table provides in-memory row storage: unpartitioned base tables
// and partitioned tables whose partitions carry the two PREF bitmap indexes
// from Section 2 of the paper (dup and hasRef).
package table

import (
	"fmt"

	"pref/internal/bitset"
	"pref/internal/catalog"
	"pref/internal/value"
)

// Data is an unpartitioned table: metadata plus its rows.
type Data struct {
	Meta *catalog.Table
	Rows []value.Tuple
}

// NewData returns an empty table for the given metadata.
func NewData(meta *catalog.Table) *Data {
	return &Data{Meta: meta}
}

// Append adds a row after checking its arity.
func (d *Data) Append(t value.Tuple) error {
	if len(t) != d.Meta.NumCols() {
		return fmt.Errorf("table %s: row arity %d, want %d", d.Meta.Name, len(t), d.Meta.NumCols())
	}
	d.Rows = append(d.Rows, t)
	return nil
}

// MustAppend is Append that panics on error. The panic is reserved for
// the programmer-error invariant of source-literal rows in test fixtures,
// examples, and generators whose arity is fixed by construction; fallible
// ingest paths (bulk loading, external data) must use Append and handle
// the error.
func (d *Data) MustAppend(t value.Tuple) {
	if err := d.Append(t); err != nil {
		// lint:invariant
		panic(err)
	}
}

// Len reports the number of rows.
func (d *Data) Len() int { return len(d.Rows) }

// Partition is one horizontal fragment of a partitioned table. Dup and
// HasRef are the bitmap indexes of Section 2.1: Dup marks copies beyond a
// tuple's globally first stored occurrence (so a dup=0 filter eliminates
// exactly the PREF-induced duplicates), HasRef marks tuples that have at
// least one partitioning partner in the referenced table (the paper's hasS).
type Partition struct {
	Rows   []value.Tuple
	Dup    *bitset.Bitset
	HasRef *bitset.Bitset
}

// NewPartition returns an empty partition with empty bitmap indexes.
func NewPartition() *Partition {
	return &Partition{Dup: bitset.New(0), HasRef: bitset.New(0)}
}

// Append stores one tuple copy with its index bits.
func (p *Partition) Append(t value.Tuple, dup, hasRef bool) {
	p.Rows = append(p.Rows, t)
	p.Dup.Append(dup)
	p.HasRef.Append(hasRef)
}

// Len reports the number of stored tuple copies.
func (p *Partition) Len() int { return len(p.Rows) }

// Partitioned is a horizontally partitioned table.
type Partitioned struct {
	Meta *catalog.Table
	// Parts has one entry per logical node.
	Parts []*Partition
	// OriginalRows is the pre-partitioning cardinality |T|; the stored
	// cardinality |T^P| may be larger due to PREF duplicates or replication.
	OriginalRows int
	// Replicated marks a fully replicated table (every partition holds
	// every row).
	Replicated bool
}

// NewPartitioned returns a partitioned table with n empty partitions.
func NewPartitioned(meta *catalog.Table, n int) *Partitioned {
	parts := make([]*Partition, n)
	for i := range parts {
		parts[i] = NewPartition()
	}
	return &Partitioned{Meta: meta, Parts: parts}
}

// NumPartitions reports the partition count.
func (pt *Partitioned) NumPartitions() int { return len(pt.Parts) }

// StoredRows reports |T^P|: total stored tuple copies across partitions.
func (pt *Partitioned) StoredRows() int {
	n := 0
	for _, p := range pt.Parts {
		n += p.Len()
	}
	return n
}

// DuplicateRows reports how many stored copies are PREF duplicates.
func (pt *Partitioned) DuplicateRows() int {
	n := 0
	for _, p := range pt.Parts {
		n += p.Dup.Count()
	}
	return n
}

// Redundancy reports |T^P|/|T| − 1 for this single table (0 = none).
func (pt *Partitioned) Redundancy() float64 {
	if pt.OriginalRows == 0 {
		return 0
	}
	return float64(pt.StoredRows())/float64(pt.OriginalRows) - 1
}

// Database is a set of unpartitioned tables keyed by name.
type Database struct {
	Schema *catalog.Schema
	Tables map[string]*Data
}

// NewDatabase returns an empty database with one Data per schema table.
func NewDatabase(s *catalog.Schema) *Database {
	db := &Database{Schema: s, Tables: make(map[string]*Data)}
	for _, t := range s.Tables() {
		db.Tables[t.Name] = NewData(t)
	}
	return db
}

// Without returns a database view excluding the named tables (sharing the
// remaining tables' data). Design algorithms use it to drop small
// fully-replicated tables before partitioning (Section 3.1).
func (db *Database) Without(names ...string) *Database {
	out := &Database{Schema: db.Schema.Without(names...), Tables: make(map[string]*Data)}
	for _, t := range out.Schema.Tables() {
		out.Tables[t.Name] = db.Tables[t.Name]
	}
	return out
}

// TotalRows reports |D|: the sum of all table cardinalities.
func (db *Database) TotalRows() int {
	n := 0
	for _, t := range db.Tables {
		n += t.Len()
	}
	return n
}

// PartitionedDatabase is the result of applying a partitioning
// configuration to a Database.
type PartitionedDatabase struct {
	Schema *catalog.Schema
	Tables map[string]*Partitioned
	N      int // number of partitions / nodes
}

// TotalStoredRows reports |D^P|.
func (pdb *PartitionedDatabase) TotalStoredRows() int {
	n := 0
	for _, t := range pdb.Tables {
		n += t.StoredRows()
	}
	return n
}

// DataRedundancy reports DR = |D^P|/|D| − 1 (Section 3.3), where |D| is the
// sum of original cardinalities of the partitioned tables.
func (pdb *PartitionedDatabase) DataRedundancy() float64 {
	orig := 0
	for _, t := range pdb.Tables {
		orig += t.OriginalRows
	}
	if orig == 0 {
		return 0
	}
	return float64(pdb.TotalStoredRows())/float64(orig) - 1
}
