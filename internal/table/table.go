// Package table provides in-memory row storage: unpartitioned base tables
// and partitioned tables whose partitions carry the two PREF bitmap indexes
// from Section 2 of the paper (dup and hasRef).
package table

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pref/internal/bitset"
	"pref/internal/catalog"
	"pref/internal/value"
)

// Data is an unpartitioned table: metadata plus its rows.
type Data struct {
	Meta *catalog.Table
	Rows []value.Tuple
}

// NewData returns an empty table for the given metadata.
func NewData(meta *catalog.Table) *Data {
	return &Data{Meta: meta}
}

// Append adds a row after checking its arity.
func (d *Data) Append(t value.Tuple) error {
	if len(t) != d.Meta.NumCols() {
		return fmt.Errorf("table %s: row arity %d, want %d", d.Meta.Name, len(t), d.Meta.NumCols())
	}
	d.Rows = append(d.Rows, t)
	return nil
}

// MustAppend is Append that panics on error. The panic is reserved for
// the programmer-error invariant of source-literal rows in test fixtures,
// examples, and generators whose arity is fixed by construction; fallible
// ingest paths (bulk loading, external data) must use Append and handle
// the error.
func (d *Data) MustAppend(t value.Tuple) {
	if err := d.Append(t); err != nil {
		// lint:invariant
		panic(err)
	}
}

// Len reports the number of rows.
func (d *Data) Len() int { return len(d.Rows) }

// Partition is one horizontal fragment of a partitioned table. Dup and
// HasRef are the bitmap indexes of Section 2.1: Dup marks copies beyond a
// tuple's globally first stored occurrence (so a dup=0 filter eliminates
// exactly the PREF-induced duplicates), HasRef marks tuples that have at
// least one partitioning partner in the referenced table (the paper's hasS).
type Partition struct {
	Rows   []value.Tuple
	Dup    *bitset.Bitset
	HasRef *bitset.Bitset

	// cols caches the columnar projection (see Columns). A Clone starts
	// with an empty cache, and Append invalidates by length mismatch.
	cols atomic.Pointer[Columnar]
}

// NewPartition returns an empty partition with empty bitmap indexes.
func NewPartition() *Partition {
	return &Partition{Dup: bitset.New(0), HasRef: bitset.New(0)}
}

// Append stores one tuple copy with its index bits.
func (p *Partition) Append(t value.Tuple, dup, hasRef bool) {
	p.Rows = append(p.Rows, t)
	p.Dup.Append(dup)
	p.HasRef.Append(hasRef)
}

// Len reports the number of stored tuple copies.
func (p *Partition) Len() int { return len(p.Rows) }

// Clone returns a copy-on-write clone: the row slice and bitmaps are
// copied, the tuples themselves (immutable by convention) are shared.
func (p *Partition) Clone() *Partition {
	rows := make([]value.Tuple, len(p.Rows))
	copy(rows, p.Rows)
	return &Partition{Rows: rows, Dup: p.Dup.Clone(), HasRef: p.HasRef.Clone()}
}

// CheckInvariants is the cheap corruption guard of the write path: every
// stored row must carry exactly one dup bit and one hasRef bit. A torn
// write (rows extended, bitmaps not — or the reverse) breaks it.
func (p *Partition) CheckInvariants() error {
	if p.Dup == nil || p.HasRef == nil {
		return fmt.Errorf("table: partition bitmaps not initialized")
	}
	if p.Dup.Len() != len(p.Rows) || p.HasRef.Len() != len(p.Rows) {
		return fmt.Errorf("table: torn partition: %d rows, %d dup bits, %d hasRef bits",
			len(p.Rows), p.Dup.Len(), p.HasRef.Len())
	}
	return nil
}

// Version is one immutable published epoch of a partitioned table.
// Readers holding a Version see a frozen, torn-free view of the table no
// matter what the write path does to the live head afterwards.
type Version struct {
	// Epoch is the per-table publication counter, starting at 0.
	Epoch int64
	// Parts is the frozen partition set. Neither the slice nor the
	// partitions it points to are ever mutated after publication.
	Parts []*Partition
	// Rows is OriginalRows at publication time.
	Rows int
}

// Partitioned is a horizontally partitioned table.
//
// It separates two views of the data: Parts is the live head owned by the
// single writer (the bulk loader), and an atomically published Version is
// what concurrent readers pin (Snapshot). Between commits the head and
// the published version share the same *Partition objects; a writer must
// call BeginWrite before mutating a partition so shared partitions are
// cloned first (copy-on-write), keeping every published epoch immutable.
type Partitioned struct {
	Meta *catalog.Table
	// Parts has one entry per logical node. It is the writer's head: code
	// that mutates partitions in place (the single-threaded build and
	// load paths) must either run before the first Snapshot or go through
	// BeginWrite.
	Parts []*Partition
	// OriginalRows is the pre-partitioning cardinality |T|; the stored
	// cardinality |T^P| may be larger due to PREF duplicates or replication.
	OriginalRows int
	// Replicated marks a fully replicated table (every partition holds
	// every row).
	Replicated bool

	// pub is the latest published epoch; nil until first Snapshot/Publish.
	pub atomic.Pointer[Version]
	// pubMu serializes publications (Snapshot's lazy epoch 0, Publish).
	pubMu sync.Mutex
	// shared[p] marks head partitions referenced by the published version;
	// BeginWrite clones them before the first post-publication mutation.
	// Meaningful only relative to the published epoch, so access it after
	// the atomic load (or under the publication mutex) — enforced by the
	// happensbefore analyzer. lint:guarded-by pub pubMu
	shared []bool
}

// NewPartitioned returns a partitioned table with n empty partitions.
func NewPartitioned(meta *catalog.Table, n int) *Partitioned {
	parts := make([]*Partition, n)
	for i := range parts {
		parts[i] = NewPartition()
	}
	return &Partitioned{Meta: meta, Parts: parts}
}

// NumPartitions reports the partition count.
func (pt *Partitioned) NumPartitions() int { return len(pt.Parts) }

// Snapshot returns the latest published version, publishing the current
// head as epoch 0 on first use. Safe for concurrent readers; the lazy
// first publication assumes the single-writer discipline (no concurrent
// head mutation during the initial build, which ends before queries run).
func (pt *Partitioned) Snapshot() *Version {
	if v := pt.pub.Load(); v != nil {
		return v
	}
	pt.pubMu.Lock()
	defer pt.pubMu.Unlock()
	if v := pt.pub.Load(); v != nil {
		return v
	}
	pt.publishLocked(0)
	return pt.pub.Load()
}

// BeginWrite returns head partition p ready for mutation, cloning it
// first when the published version still references it (copy-on-write).
// Single writer only.
func (pt *Partitioned) BeginWrite(p int) *Partition {
	if pt.pub.Load() == nil {
		return pt.Parts[p] // never published: the head is private
	}
	if pt.shared == nil {
		// Published without shared tracking (epoch 0 from Snapshot on a
		// literal-constructed table): every head partition is shared.
		pt.shared = make([]bool, len(pt.Parts))
		for i := range pt.shared {
			pt.shared[i] = true
		}
	}
	if pt.shared[p] {
		pt.Parts[p] = pt.Parts[p].Clone()
		pt.shared[p] = false
	}
	return pt.Parts[p]
}

// Publish freezes the current head as the next epoch and returns it.
// In-flight readers keep their pinned versions; new Snapshot calls see
// the fresh epoch. Single writer only.
func (pt *Partitioned) Publish() int64 {
	pt.pubMu.Lock()
	defer pt.pubMu.Unlock()
	var epoch int64
	if v := pt.pub.Load(); v != nil {
		epoch = v.Epoch + 1
	}
	return pt.publishLocked(epoch)
}

// publishLocked installs the head as the given epoch. Callers hold pubMu.
// The shared-partition bookkeeping must complete BEFORE the atomic store:
// the store's release ordering is what makes it visible to a writer whose
// only synchronization is the fast-path pub.Load in Snapshot/BeginWrite
// (the lazy epoch-0 publication may run on a reader goroutine).
//
// lint:holds pubMu
func (pt *Partitioned) publishLocked(epoch int64) int64 {
	parts := make([]*Partition, len(pt.Parts))
	copy(parts, pt.Parts)
	if len(pt.shared) != len(pt.Parts) {
		pt.shared = make([]bool, len(pt.Parts))
	}
	for i := range pt.shared {
		pt.shared[i] = true
	}
	pt.pub.Store(&Version{Epoch: epoch, Parts: parts, Rows: pt.OriginalRows})
	return epoch
}

// ResetToPublished discards all head mutations since the last publication,
// restoring every partition (and OriginalRows) from the published version.
// This is the write path's rollback: a crash can leave the head torn —
// partially applied fan-outs, rows without bitmap entries — but published
// epochs are immutable, so restoring from them repairs every row-length
// and bitmap invariant at once. Returns the number of head row copies
// discarded. A table never published has nothing to roll back.
func (pt *Partitioned) ResetToPublished() int {
	v := pt.pub.Load()
	if v == nil {
		return 0
	}
	discarded := 0
	for p := range pt.Parts {
		if p < len(pt.shared) && pt.shared[p] {
			continue // still the published object: untouched
		}
		discarded += pt.Parts[p].Len()
	}
	pt.pubMu.Lock()
	defer pt.pubMu.Unlock()
	pt.Parts = make([]*Partition, len(v.Parts))
	copy(pt.Parts, v.Parts)
	pt.OriginalRows = v.Rows
	pt.shared = make([]bool, len(pt.Parts))
	for i := range pt.shared {
		pt.shared[i] = true
	}
	return discarded
}

// StoredRows reports |T^P|: total stored tuple copies across partitions.
func (pt *Partitioned) StoredRows() int {
	n := 0
	for _, p := range pt.Parts {
		n += p.Len()
	}
	return n
}

// DuplicateRows reports how many stored copies are PREF duplicates.
func (pt *Partitioned) DuplicateRows() int {
	n := 0
	for _, p := range pt.Parts {
		n += p.Dup.Count()
	}
	return n
}

// Redundancy reports |T^P|/|T| − 1 for this single table (0 = none).
func (pt *Partitioned) Redundancy() float64 {
	if pt.OriginalRows == 0 {
		return 0
	}
	return float64(pt.StoredRows())/float64(pt.OriginalRows) - 1
}

// Database is a set of unpartitioned tables keyed by name.
type Database struct {
	Schema *catalog.Schema
	Tables map[string]*Data
}

// NewDatabase returns an empty database with one Data per schema table.
func NewDatabase(s *catalog.Schema) *Database {
	db := &Database{Schema: s, Tables: make(map[string]*Data)}
	for _, t := range s.Tables() {
		db.Tables[t.Name] = NewData(t)
	}
	return db
}

// Without returns a database view excluding the named tables (sharing the
// remaining tables' data). Design algorithms use it to drop small
// fully-replicated tables before partitioning (Section 3.1).
func (db *Database) Without(names ...string) *Database {
	out := &Database{Schema: db.Schema.Without(names...), Tables: make(map[string]*Data)}
	for _, t := range out.Schema.Tables() {
		out.Tables[t.Name] = db.Tables[t.Name]
	}
	return out
}

// TotalRows reports |D|: the sum of all table cardinalities.
func (db *Database) TotalRows() int {
	n := 0
	for _, t := range db.Tables {
		n += t.Len()
	}
	return n
}

// PartitionedDatabase is the result of applying a partitioning
// configuration to a Database.
type PartitionedDatabase struct {
	Schema *catalog.Schema
	Tables map[string]*Partitioned
	N      int // number of partitions / nodes

	// mu orders snapshots against commits, so a DBSnapshot never observes
	// a commit's tables half-published; epoch counts commits.
	mu    sync.RWMutex
	epoch int64
}

// DBSnapshot pins one consistent database epoch: every table's version as
// of a single commit boundary. Queries resolve it once at admission and
// read only through it, so a batch publishing mid-query is invisible.
type DBSnapshot struct {
	// Epoch is the database-wide commit counter at pin time.
	Epoch int64
	// Tables maps each table to its pinned version.
	Tables map[string]*Version
}

// Parts returns the pinned partition set of a table, or nil when the
// snapshot does not hold it.
func (s *DBSnapshot) Parts(tbl string) []*Partition {
	if s == nil {
		return nil
	}
	if v, ok := s.Tables[tbl]; ok {
		return v.Parts
	}
	return nil
}

// Snapshot pins the current epoch across all tables, atomically with
// respect to Commit. First use freezes every table at epoch 0.
func (pdb *PartitionedDatabase) Snapshot() *DBSnapshot {
	pdb.mu.RLock()
	defer pdb.mu.RUnlock()
	s := &DBSnapshot{Epoch: pdb.epoch, Tables: make(map[string]*Version, len(pdb.Tables))}
	for name, pt := range pdb.Tables {
		s.Tables[name] = pt.Snapshot()
	}
	return s
}

// Epoch reports the database-wide commit counter.
func (pdb *PartitionedDatabase) Epoch() int64 {
	pdb.mu.RLock()
	defer pdb.mu.RUnlock()
	return pdb.epoch
}

// Commit publishes the heads of the named tables as fresh per-table
// versions and bumps the database epoch — the single atomic step that
// makes a write batch visible. Snapshots taken before Commit returns see
// either none or all of the batch. Single writer only.
func (pdb *PartitionedDatabase) Commit(tables ...string) int64 {
	pdb.mu.Lock()
	defer pdb.mu.Unlock()
	for _, name := range tables {
		if pt := pdb.Tables[name]; pt != nil {
			pt.Publish()
		}
	}
	pdb.epoch++
	return pdb.epoch
}

// TotalStoredRows reports |D^P|.
func (pdb *PartitionedDatabase) TotalStoredRows() int {
	n := 0
	for _, t := range pdb.Tables {
		n += t.StoredRows()
	}
	return n
}

// DataRedundancy reports DR = |D^P|/|D| − 1 (Section 3.3), where |D| is the
// sum of original cardinalities of the partitioned tables.
func (pdb *PartitionedDatabase) DataRedundancy() float64 {
	orig := 0
	for _, t := range pdb.Tables {
		orig += t.OriginalRows
	}
	if orig == 0 {
		return 0
	}
	return float64(pdb.TotalStoredRows())/float64(orig) - 1
}
