package check_test

import (
	"testing"

	"pref/internal/bulkload"
	"pref/internal/catalog"
	"pref/internal/check"
	"pref/internal/partition"
	"pref/internal/table"
	"pref/internal/value"
)

// storeFixture builds a four-partition store exercising every scheme the
// write checker knows: hash-seeded lineitem, PREF orders (hash-
// equivalent through the predicate) and customer, a replicated nation,
// and a round-robin log table. Each corruption test damages one physical
// detail and asserts the matching rule fires.
func storeFixture(t *testing.T) (*table.PartitionedDatabase, *partition.Config) {
	t.Helper()
	s := catalog.NewSchema("ws")
	s.MustAddTable(catalog.MustTable("lineitem",
		[]catalog.Column{{Name: "orderkey", Kind: value.Int}, {Name: "linekey", Kind: value.Int}}, "orderkey", "linekey"))
	s.MustAddTable(catalog.MustTable("orders",
		[]catalog.Column{{Name: "orderkey", Kind: value.Int}, {Name: "custkey", Kind: value.Int}}, "orderkey"))
	s.MustAddTable(catalog.MustTable("customer",
		[]catalog.Column{{Name: "custkey", Kind: value.Int}, {Name: "nation", Kind: value.Int}}, "custkey"))
	s.MustAddTable(catalog.MustTable("nation",
		[]catalog.Column{{Name: "nkey", Kind: value.Int}}, "nkey"))
	s.MustAddTable(catalog.MustTable("log",
		[]catalog.Column{{Name: "seq", Kind: value.Int}}, "seq"))
	db := table.NewDatabase(s)
	for i := int64(0); i < 40; i++ {
		db.Tables["lineitem"].MustAppend(value.Tuple{i % 12, i})
	}
	for i := int64(0); i < 12; i++ {
		db.Tables["orders"].MustAppend(value.Tuple{i, i % 6})
	}
	for i := int64(0); i < 6; i++ {
		db.Tables["customer"].MustAppend(value.Tuple{i, i % 3})
	}
	for i := int64(0); i < 3; i++ {
		db.Tables["nation"].MustAppend(value.Tuple{i})
	}
	for i := int64(0); i < 10; i++ {
		db.Tables["log"].MustAppend(value.Tuple{i})
	}
	cfg := partition.NewConfig(4)
	cfg.SetHash("lineitem", "orderkey")
	cfg.SetPref("orders", "lineitem", []string{"orderkey"}, []string{"orderkey"})
	cfg.SetPref("customer", "orders", []string{"custkey"}, []string{"custkey"})
	cfg.SetReplicated("nation")
	cfg.Set(&partition.TableScheme{Table: "log", Method: partition.RoundRobin})
	pdb, err := partition.Apply(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pdb, cfg
}

// wantRule asserts VerifyStore reports at least the given rule.
func wantRule(t *testing.T, pdb *table.PartitionedDatabase, cfg *partition.Config, r check.Rule) {
	t.Helper()
	err := check.VerifyStore(pdb, cfg)
	if err == nil {
		t.Fatalf("corrupted store verified cleanly, want rule %s", r)
	}
	vs := check.ViolationsOf(err)
	if !vs.HasRule(r) {
		t.Fatalf("want rule %s, got: %v", r, err)
	}
}

func TestVerifyStoreCleanFixture(t *testing.T) {
	pdb, cfg := storeFixture(t)
	if err := check.VerifyStore(pdb, cfg); err != nil {
		t.Fatalf("freshly partitioned store must verify: %v", err)
	}
}

func TestVerifyStoreTornPartition(t *testing.T) {
	pdb, cfg := storeFixture(t)
	part := pdb.Tables["orders"].Parts[1]
	part.Rows = append(part.Rows, value.Tuple{99, 99}) // row without bits
	wantRule(t, pdb, cfg, check.RuleWriteTorn)
}

func TestVerifyStoreMisplacedHashRow(t *testing.T) {
	pdb, cfg := storeFixture(t)
	pt := pdb.Tables["lineitem"]
	// Move one hash row to the wrong partition, keeping counts intact.
	var from int
	for p := range pt.Parts {
		if pt.Parts[p].Len() > 0 {
			from = p
			break
		}
	}
	src := pt.Parts[from]
	row := src.Rows[0]
	to := (from + 1) % len(pt.Parts)
	pt.Parts[to].Append(row, false, false)
	np := table.NewPartition()
	for i := 1; i < src.Len(); i++ {
		np.Append(src.Rows[i], src.Dup.Get(i), src.HasRef.Get(i))
	}
	pt.Parts[from] = np
	wantRule(t, pdb, cfg, check.RuleWriteIndex)
}

func TestVerifyStoreUnjustifiedPrefCopy(t *testing.T) {
	pdb, cfg := storeFixture(t)
	pt := pdb.Tables["customer"]
	// A partnered copy at a partition the referenced table's partition
	// index does not contain for its ring key: customer custkey 50 has
	// no orders partner anywhere, so a hasRef copy is unjustified.
	pt.Parts[2].Append(value.Tuple{50, 0}, false, true)
	pt.OriginalRows++
	wantRule(t, pdb, cfg, check.RuleWriteIndex)
}

func TestVerifyStoreLostPrimary(t *testing.T) {
	pdb, cfg := storeFixture(t)
	pt := pdb.Tables["orders"]
	// Flip every primary copy of one stored value to dup: the value
	// loses its primary and double-counts disappear from OriginalRows.
	for _, part := range pt.Parts {
		for i := range part.Rows {
			if !part.Dup.Get(i) {
				part.Dup.Set(i, true)
				pt.OriginalRows-- // keep the count law out of the way
			}
		}
		break
	}
	wantRule(t, pdb, cfg, check.RuleWriteDup)
}

func TestVerifyStoreOrphanDup(t *testing.T) {
	pdb, cfg := storeFixture(t)
	pt := pdb.Tables["customer"]
	// A dup copy not marked partnered: orphans are single-copy and never
	// generate dups.
	pt.Parts[0].Append(value.Tuple{60, 1}, true, false)
	wantRule(t, pdb, cfg, check.RuleWriteDup)
}

func TestVerifyStoreCountDrift(t *testing.T) {
	pdb, cfg := storeFixture(t)
	pdb.Tables["lineitem"].OriginalRows += 7
	wantRule(t, pdb, cfg, check.RuleWriteCount)
}

func TestVerifyStoreReplicatedDivergence(t *testing.T) {
	pdb, cfg := storeFixture(t)
	pt := pdb.Tables["nation"]
	// One replica drops a row: the partition multisets diverge.
	src := pt.Parts[3]
	np := table.NewPartition()
	for i := 1; i < src.Len(); i++ {
		np.Append(src.Rows[i], src.Dup.Get(i), src.HasRef.Get(i))
	}
	pt.Parts[3] = np
	wantRule(t, pdb, cfg, check.RuleWriteIndex)
}

func TestVerifyStoreRoundRobinDupBit(t *testing.T) {
	pdb, cfg := storeFixture(t)
	pdb.Tables["log"].Parts[0].Dup.Set(0, true)
	wantRule(t, pdb, cfg, check.RuleWriteDup)
}

// The checker must pass on stores produced by the incremental write
// path, not only by the offline partitioner — hash-equivalent orphan
// placement included.
func TestVerifyStoreAfterIncrementalWrites(t *testing.T) {
	pdb, cfg := storeFixture(t)
	l := bulkload.NewLoader(pdb, cfg)
	ops := []struct {
		tbl string
		row value.Tuple
	}{
		{"lineitem", value.Tuple{200, 1}},
		{"orders", value.Tuple{200, 2}},  // partnered via fresh lineitem
		{"orders", value.Tuple{300, 3}},  // hash-equivalent orphan
		{"customer", value.Tuple{40, 0}}, // round-robin orphan
	}
	for _, op := range ops {
		if _, err := l.Apply(bulkload.Insert(op.tbl, op.row)); err != nil {
			t.Fatalf("insert %s %v: %v", op.tbl, op.row, err)
		}
	}
	if _, err := l.Apply(bulkload.Delete("log", []string{"seq"}, value.Tuple{0})); err != nil {
		t.Fatal(err)
	}
	if err := check.VerifyStore(pdb, cfg); err != nil {
		t.Fatalf("store must verify after incremental writes: %v", err)
	}
}
