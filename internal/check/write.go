package check

import (
	"fmt"
	"sort"

	"pref/internal/partition"
	"pref/internal/table"
	"pref/internal/value"
)

// Store rules (VerifyStore). Where Verify and VerifyDesign prove the
// plan and the design, VerifyStore proves the *data*: after any sequence
// of write batches, crashes, and recoveries, the stored tuple copies and
// their bitmap indexes must still be exactly what the partitioning
// schemes promise. The write path (internal/bulkload) re-establishes
// these invariants after every recovery; this checker is the independent
// witness that it did.
const (
	// RuleWriteTorn marks partitions whose row slice and bitmap indexes
	// disagree in length — the physical signature of a write that crashed
	// between appending a row and appending its bits.
	RuleWriteTorn Rule = "write-torn"
	// RuleWriteDup marks duplicate-bit accounting breaches: a stored
	// value with no primary copy (every copy marked dup), a dup copy not
	// marked as partnered, dup or hasRef bits on schemes that never set
	// them, or replicated copies whose dup bits disagree with the
	// one-primary-per-table convention.
	RuleWriteDup Rule = "write-dup"
	// RuleWriteIndex marks stored copies whose placement is not justified
	// by the scheme: a hash/range copy outside its computed partition, a
	// partnered PREF copy stored at a partition the referenced table's
	// partition index does not contain for its ring key (the stored keys
	// must be covered by the partition index), or a hash-equivalent
	// orphan outside its mapped hash partition.
	RuleWriteIndex Rule = "write-index"
	// RuleWriteCount marks tables whose OriginalRows counter disagrees
	// with the stored primary copies.
	RuleWriteCount Rule = "write-count"
)

// VerifyStore checks every stored tuple copy of the database head
// against the partitioning configuration: partitions are not torn,
// dup/hasRef accounting matches each table's scheme, every copy's
// placement is justified, and the logical row counters agree with the
// stored primaries.
//
// It reads the live write head (the same state the loader mutates), not
// a pinned snapshot, so it also catches corruption that was never
// published. Call it from the writer's goroutine or with the write path
// quiesced — after bulkload recovery, at the end of a workload, or from
// tests. It returns nil when every invariant holds, or a Violations
// error listing every breach.
func VerifyStore(pdb *table.PartitionedDatabase, cfg *partition.Config) error {
	if pdb == nil || cfg == nil {
		return Violations{{Rule: RuleWriteTorn, Detail: "nil database or config"}}
	}
	var vs Violations
	names := make([]string, 0, len(pdb.Tables))
	for name := range pdb.Tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		vs = append(vs, verifyTableStore(pdb, cfg, name)...)
	}
	if len(vs) == 0 {
		return nil
	}
	return vs
}

func verifyTableStore(pdb *table.PartitionedDatabase, cfg *partition.Config, name string) Violations {
	pt := pdb.Tables[name]
	ts := cfg.Scheme(name)
	if ts == nil {
		return Violations{{Rule: RuleWriteIndex, Table: name,
			Detail: "table stored but not covered by the partitioning config"}}
	}

	// Torn partitions first: the per-copy checks below index the bitmaps
	// by row position and need the lengths to agree.
	var vs Violations
	for p, part := range pt.Parts {
		if err := part.CheckInvariants(); err != nil {
			vs = append(vs, &Violation{Rule: RuleWriteTorn, Table: name,
				Detail: fmt.Sprintf("partition %d: %v", p, err)})
		}
	}
	if vs != nil {
		return vs
	}

	switch ts.Method {
	case partition.Hash, partition.Range, partition.RoundRobin:
		vs = append(vs, verifySingleCopy(pt, ts, cfg.NumPartitions)...)
	case partition.Replicated:
		vs = append(vs, verifyReplicated(pt)...)
	case partition.Pref:
		vs = append(vs, verifyPref(pdb, cfg, pt, ts)...)
	default:
		vs = append(vs, &Violation{Rule: RuleWriteIndex, Table: name,
			Detail: fmt.Sprintf("unsupported partitioning method %v", ts.Method)})
	}
	return vs
}

// verifySingleCopy checks the dup-free single-copy schemes: every stored
// row is a primary with clear bits, and hash/range rows sit in the
// partition their key computes to. Round-robin imposes no placement.
func verifySingleCopy(pt *table.Partitioned, ts *partition.TableScheme, n int) Violations {
	var vs Violations
	var cols []int
	if ts.Method == partition.Hash || ts.Method == partition.Range {
		idx, err := pt.Meta.ColIndexes(ts.Cols)
		if err != nil {
			return Violations{{Rule: RuleWriteIndex, Table: pt.Meta.Name, Detail: err.Error()}}
		}
		cols = idx
	}
	stored := 0
	for p, part := range pt.Parts {
		stored += part.Len()
		for i, row := range part.Rows {
			if part.Dup.Get(i) || part.HasRef.Get(i) {
				vs = append(vs, &Violation{Rule: RuleWriteDup, Table: pt.Meta.Name,
					Detail: fmt.Sprintf("partition %d row %d: dup/hasRef bits set on a %v table",
						p, i, ts.Method)})
				continue
			}
			var want int
			switch ts.Method {
			case partition.Hash:
				want = int(value.HashTuple(row, cols) % uint64(n))
			case partition.Range:
				want = partition.RangeTarget(row[cols[0]], ts.Bounds)
			default:
				continue
			}
			if want != p {
				vs = append(vs, &Violation{Rule: RuleWriteIndex, Table: pt.Meta.Name,
					Detail: fmt.Sprintf("partition %d row %d: %v placement computes partition %d",
						p, i, ts.Method, want)})
			}
		}
	}
	if stored != pt.OriginalRows {
		vs = append(vs, &Violation{Rule: RuleWriteCount, Table: pt.Meta.Name,
			Detail: fmt.Sprintf("%d stored rows but OriginalRows = %d", stored, pt.OriginalRows)})
	}
	return vs
}

// verifyReplicated checks the full-copy scheme: every partition holds
// the same row multiset, partition 0 holds the primaries (clear dup
// bits), and every other copy is marked dup so |T^P| accounting stays
// uniform.
func verifyReplicated(pt *table.Partitioned) Violations {
	var vs Violations
	allCols := make([]int, pt.Meta.NumCols())
	for i := range allCols {
		allCols[i] = i
	}
	multiset := func(part *table.Partition) map[value.Key]int {
		m := make(map[value.Key]int, part.Len())
		for _, row := range part.Rows {
			m[value.MakeKey(row, allCols)]++
		}
		return m
	}
	var base map[value.Key]int
	for p, part := range pt.Parts {
		for i := range part.Rows {
			if part.HasRef.Get(i) {
				vs = append(vs, &Violation{Rule: RuleWriteDup, Table: pt.Meta.Name,
					Detail: fmt.Sprintf("partition %d row %d: hasRef bit set on a replicated table", p, i)})
			}
			if part.Dup.Get(i) != (p > 0) {
				vs = append(vs, &Violation{Rule: RuleWriteDup, Table: pt.Meta.Name,
					Detail: fmt.Sprintf("partition %d row %d: replicated dup bit = %v, want %v",
						p, i, part.Dup.Get(i), p > 0)})
			}
		}
		if p == 0 {
			base = multiset(part)
			continue
		}
		m := multiset(part)
		if len(m) != len(base) || !sameCounts(base, m) {
			vs = append(vs, &Violation{Rule: RuleWriteIndex, Table: pt.Meta.Name,
				Detail: fmt.Sprintf("partition %d row multiset differs from partition 0", p)})
		}
	}
	if len(pt.Parts) > 0 && pt.Parts[0].Len() != pt.OriginalRows {
		vs = append(vs, &Violation{Rule: RuleWriteCount, Table: pt.Meta.Name,
			Detail: fmt.Sprintf("%d primary copies but OriginalRows = %d",
				pt.Parts[0].Len(), pt.OriginalRows)})
	}
	return vs
}

func sameCounts(a, b map[value.Key]int) bool {
	for k, c := range a {
		if b[k] != c {
			return false
		}
	}
	return true
}

// verifyPref checks the co-partitioning scheme of Section 2.1: every
// partnered copy (hasRef set) must be stored at a partition the
// referenced table's partition index contains for the copy's ring key —
// the stored keys are covered by the index, so PREF joins never miss a
// local partner. Duplicate copies must be partnered (orphans are
// single-copy and never generate dups), every stored value keeps at
// least one primary, hash-equivalent orphans sit in their mapped hash
// partition, and the primary count matches OriginalRows.
//
// Deliberately NOT checked: the reverse inclusion (index keys all
// materialized as stored copies) and hasRef freshness. Referenced-side
// inserts after a referencing tuple was placed widen the index without
// rewriting existing copies — the documented insert-order maintenance
// slack of the write path.
func verifyPref(pdb *table.PartitionedDatabase, cfg *partition.Config, pt *table.Partitioned, ts *partition.TableScheme) Violations {
	name := pt.Meta.Name
	ref := pdb.Tables[ts.RefTable]
	if ref == nil {
		return Violations{{Rule: RuleWriteIndex, Table: name,
			Detail: fmt.Sprintf("referenced table %s not stored", ts.RefTable)}}
	}
	idx, err := partition.PartitionIndex(ref, ts.Pred.ReferencedCols)
	if err != nil {
		return Violations{{Rule: RuleWriteIndex, Table: name, Detail: err.Error()}}
	}
	ringCols, err := pt.Meta.ColIndexes(ts.Pred.ReferencingCols)
	if err != nil {
		return Violations{{Rule: RuleWriteIndex, Table: name, Detail: err.Error()}}
	}
	var orphanCols []int
	if mapped, ok := cfg.HashEquivalent(name); ok {
		oc, err := pt.Meta.ColIndexes(mapped)
		if err != nil {
			return Violations{{Rule: RuleWriteIndex, Table: name, Detail: err.Error()}}
		}
		orphanCols = oc
	}
	allCols := make([]int, pt.Meta.NumCols())
	for i := range allCols {
		allCols[i] = i
	}

	var vs Violations
	primaries := 0
	// Per distinct full-row value: how many primary copies survive. A
	// value whose every copy is marked dup lost its primary to a buggy
	// delete or torn replay.
	values := make(map[value.Key]int)
	for p, part := range pt.Parts {
		for i, row := range part.Rows {
			dup, hasRef := part.Dup.Get(i), part.HasRef.Get(i)
			full := value.MakeKey(row, allCols)
			if !dup {
				primaries++
				values[full]++
			} else if _, seen := values[full]; !seen {
				values[full] += 0
			}
			if dup && !hasRef {
				vs = append(vs, &Violation{Rule: RuleWriteDup, Table: name,
					Detail: fmt.Sprintf("partition %d row %d: dup copy not marked partnered", p, i)})
			}
			if hasRef {
				if !containsInt(idx[value.MakeKey(row, ringCols)], p) {
					vs = append(vs, &Violation{Rule: RuleWriteIndex, Table: name,
						Detail: fmt.Sprintf(
							"partition %d row %d: partnered copy not covered by %s's partition index for its ring key",
							p, i, ts.RefTable)})
				}
				continue
			}
			if orphanCols != nil {
				want := int(value.HashTuple(row, orphanCols) % uint64(cfg.NumPartitions))
				if want != p {
					vs = append(vs, &Violation{Rule: RuleWriteIndex, Table: name,
						Detail: fmt.Sprintf(
							"partition %d row %d: hash-equivalent orphan maps to partition %d", p, i, want)})
				}
			}
		}
	}
	for full, d0 := range values {
		if d0 == 0 {
			vs = append(vs, &Violation{Rule: RuleWriteDup, Table: name,
				Detail: fmt.Sprintf("value %v: every stored copy marked dup, primary lost", full)})
		}
	}
	if primaries != pt.OriginalRows {
		vs = append(vs, &Violation{Rule: RuleWriteCount, Table: name,
			Detail: fmt.Sprintf("%d primary copies but OriginalRows = %d", primaries, pt.OriginalRows)})
	}
	return vs
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
