package check

import (
	"fmt"

	"pref/internal/catalog"
	"pref/internal/partition"
)

// VerifyDesign statically checks a partitioning configuration against a
// catalog schema: every scheme names an existing table and existing
// columns, PREF predicate chains are acyclic and rooted at a proper seed
// table (Section 2.1, Definition 1), and every partitioning predicate is
// equi-join compatible (paired columns have the same value kind — the
// partitioner hashes referencing values with the referenced table's hash
// function, which is only meaningful over a shared domain).
//
// It returns nil when the design is sound, or a Violations error listing
// every breach.
func VerifyDesign(sch *catalog.Schema, cfg *partition.Config) error {
	if vs := verifyDesign(sch, cfg); len(vs) > 0 {
		return vs
	}
	return nil
}

func verifyDesign(sch *catalog.Schema, cfg *partition.Config) Violations {
	var vs Violations
	report := func(rule Rule, table, format string, args ...any) {
		vs = append(vs, &Violation{Rule: rule, Table: table, Detail: fmt.Sprintf(format, args...)})
	}

	if sch == nil || cfg == nil {
		report(RuleDesignShape, "", "nil schema or configuration")
		return vs
	}
	if cfg.NumPartitions < 1 {
		report(RuleDesignShape, "", "NumPartitions = %d, want >= 1", cfg.NumPartitions)
	}

	for name, ts := range cfg.Schemes {
		t := sch.Table(name)
		if t == nil {
			report(RuleDesignColumn, name, "scheme for unknown table %s", name)
			continue
		}
		if ts == nil {
			report(RuleDesignShape, name, "nil scheme")
			continue
		}
		switch ts.Method {
		case partition.Hash:
			if len(ts.Cols) == 0 {
				report(RuleDesignShape, name, "HASH scheme with no partitioning columns")
			}
			checkCols(report, t, ts.Cols)
		case partition.Range:
			if len(ts.Cols) != 1 {
				report(RuleDesignShape, name, "RANGE scheme needs exactly one column, has %d", len(ts.Cols))
			}
			checkCols(report, t, ts.Cols)
			if len(ts.Bounds) != cfg.NumPartitions-1 {
				report(RuleDesignShape, name, "RANGE scheme needs %d bounds, has %d",
					cfg.NumPartitions-1, len(ts.Bounds))
			}
			for i := 1; i < len(ts.Bounds); i++ {
				if ts.Bounds[i] <= ts.Bounds[i-1] {
					report(RuleDesignShape, name, "RANGE bounds not strictly ascending at index %d", i)
					break
				}
			}
		case partition.Pref:
			vs = append(vs, verifyPrefScheme(sch, cfg, t, ts)...)
		case partition.RoundRobin, partition.Replicated:
			// No columns to validate.
		default:
			report(RuleDesignShape, name, "unknown partitioning method %v", ts.Method)
		}
	}
	return vs
}

// verifyPrefScheme checks one PREF scheme: predicate shape, column
// existence, equi-join type compatibility, and the chain walk to an
// acyclic, properly seeded root.
func verifyPrefScheme(sch *catalog.Schema, cfg *partition.Config, t *catalog.Table, ts *partition.TableScheme) Violations {
	var vs Violations
	report := func(rule Rule, format string, args ...any) {
		vs = append(vs, &Violation{Rule: rule, Table: t.Name, Detail: fmt.Sprintf(format, args...)})
	}

	ref := sch.Table(ts.RefTable)
	if ref == nil {
		report(RuleDesignColumn, "PREF references unknown table %s", ts.RefTable)
		return vs
	}
	if len(ts.Pred.ReferencingCols) == 0 || len(ts.Pred.ReferencingCols) != len(ts.Pred.ReferencedCols) {
		report(RuleDesignShape, "PREF predicate must pair equally many columns (%d referencing, %d referenced)",
			len(ts.Pred.ReferencingCols), len(ts.Pred.ReferencedCols))
		return vs
	}
	for i := range ts.Pred.ReferencingCols {
		rc, sc := ts.Pred.ReferencingCols[i], ts.Pred.ReferencedCols[i]
		ri, si := t.ColIndex(rc), ref.ColIndex(sc)
		if ri < 0 {
			report(RuleDesignColumn, "PREF predicate references unknown column %s.%s", t.Name, rc)
		}
		if si < 0 {
			report(RuleDesignColumn, "PREF predicate references unknown column %s.%s", ts.RefTable, sc)
		}
		if ri >= 0 && si >= 0 && t.Columns[ri].Kind != ref.Columns[si].Kind {
			report(RuleDesignType, "PREF predicate %s.%s = %s.%s pairs %v with %v (not equi-join compatible)",
				t.Name, rc, ts.RefTable, sc, t.Columns[ri].Kind, ref.Columns[si].Kind)
		}
	}

	// Walk the reference chain: it must terminate, without revisiting a
	// table, at a seed whose scheme actually partitions data (Definition 1:
	// the seed anchors the placement; a replicated "seed" gives every
	// referencing tuple n copies and the dup/hasRef indexes no meaning).
	seen := map[string]bool{t.Name: true}
	cur := ts.RefTable
	for {
		if seen[cur] {
			report(RuleDesignCycle, "PREF chain cycles back to table %s", cur)
			return vs
		}
		seen[cur] = true
		cts := cfg.Scheme(cur)
		if cts == nil {
			report(RuleDesignSeed, "PREF chain dangles: table %s has no scheme", cur)
			return vs
		}
		if cts.Method != partition.Pref {
			switch cts.Method {
			case partition.Hash, partition.RoundRobin, partition.Range:
				// Proper seed.
			default:
				report(RuleDesignSeed, "PREF chain roots at %s with method %v; the seed must be a partitioned table (HASH, ROUND_ROBIN, or RANGE)",
					cur, cts.Method)
			}
			return vs
		}
		cur = cts.RefTable
	}
}

func checkCols(report func(Rule, string, string, ...any), t *catalog.Table, cols []string) {
	for _, c := range cols {
		if t.ColIndex(c) < 0 {
			report(RuleDesignColumn, t.Name, "partitioning column %s.%s does not exist", t.Name, c)
		}
	}
}
