package check

import (
	"fmt"

	"pref/internal/plan"
	"pref/internal/trace"
)

// Trace rules (VerifyTrace): the runtime complement of Verify. Where
// Verify proves locality and duplicate-freedom statically, VerifyTrace
// replays those proofs against what one execution actually observed —
// a trace showing rows shipped through an operator the checker proved
// local is a bug, caught automatically after every traced+verified run.
const (
	// RuleTraceShape marks traces whose operator tree does not mirror
	// the physical plan (missing spans, mismatched arity, unexecuted
	// operators in a successful run).
	RuleTraceShape Rule = "trace-shape"
	// RuleTraceShip marks rows shipped by an operator that is not a
	// data-movement operator — the runtime face of RuleLocality: a
	// statically-local join, scan (absent redundancy recovery), or any
	// other node-local operator observed putting rows on the wire.
	RuleTraceShip Rule = "trace-ship"
	// RuleTraceConserve marks span row counts that violate the
	// operator's conservation law (e.g. a projection emitting more rows
	// than it consumed, an exchange losing rows that were not
	// deduplicated, an operator consuming rows its child never produced).
	RuleTraceConserve Rule = "trace-conserve"
	// RuleTraceStats marks disagreement between the query's flat Stats
	// counters and the sum of span contributions.
	RuleTraceStats Rule = "trace-stats"
)

// VerifyTrace cross-checks a finished execution trace against the
// rewritten plan it came from: tree shape, per-operator conservation
// laws, ship legality, and agreement of span sums with the query-level
// totals. It returns nil or a Violations error, like Verify.
func VerifyTrace(rw *plan.Rewritten, tr *trace.Trace) error {
	var vs Violations
	if tr == nil || tr.Root == nil {
		return Violations{{Rule: RuleTraceShape, Detail: "no trace recorded"}}
	}
	if tr.Root.Kind != trace.KindResult || len(tr.Root.Children) != 1 {
		return Violations{{Rule: RuleTraceShape,
			Detail: fmt.Sprintf("root span is %s with %d children, want result with 1",
				tr.Root.Kind, len(tr.Root.Children))}}
	}

	tv := &traceVerifier{n: tr.N, nodeWork: make([]int64, tr.N)}
	// The synthetic Result span has no plan node; its child anchors the
	// lockstep walk over the plan tree.
	tv.checkOp(nil, tr.Root, &vs)
	tv.checkEdge(nil, tr.Root, []*trace.OpTrace{tr.Root.Children[0]}, &vs)
	tv.walk(rw.Root, tr.Root.Children[0], &vs)
	tv.checkTotals(tr, &vs)

	if len(vs) == 0 {
		return nil
	}
	return vs
}

// traceVerifier accumulates span sums while walking plan and trace trees
// in lockstep.
type traceVerifier struct {
	n        int
	sum      trace.Metrics // rollup of every span
	nodeWork []int64       // per-node Work rollup (MaxNodeRows check)
	reparts  int           // spans that count as Stats.Repartitions
	bcasts   int           // spans that count as Stats.Broadcasts
}

func (tv *traceVerifier) walk(n plan.Node, ot *trace.OpTrace, vs *Violations) {
	kids := n.Children()
	if len(kids) != len(ot.Children) {
		*vs = append(*vs, &Violation{Rule: RuleTraceShape, Node: n,
			Detail: fmt.Sprintf("span %q has %d children, plan operator has %d",
				ot.Label, len(ot.Children), len(kids))})
		return
	}
	tv.checkOp(n, ot, vs)
	tv.checkEdge(n, ot, ot.Children, vs)
	for i := range kids {
		tv.walk(kids[i], ot.Children[i], vs)
	}
}

// checkOp applies the per-operator rules: kind sanity, ship legality,
// dedup legality, and the intra-operator conservation law over the span's
// rolled-up row counts. It also accumulates the span into the verifier's
// totals.
func (tv *traceVerifier) checkOp(n plan.Node, ot *trace.OpTrace, vs *Violations) {
	m := &ot.Totals
	tv.accumulate(ot)

	bad := func(rule Rule, format string, args ...any) {
		*vs = append(*vs, &Violation{Rule: rule, Node: n,
			Detail: fmt.Sprintf("span %q: ", ot.Label) + fmt.Sprintf(format, args...)})
	}

	if ot.Kind == trace.KindUnexecuted {
		bad(RuleTraceShape, "operator present in plan but never executed in a successful run")
		return
	}

	// Ship legality: only exchange operators move rows — except a scan
	// reconstructing a lost partition from PREF/replication redundancy,
	// whose recovered rows travel from survivors to the buddy node.
	if m.RowsShipped > 0 && !ot.Kind.Exchange() {
		if !(ot.Kind == trace.KindScan && m.RecoveredRows > 0) {
			bad(RuleTraceShip,
				"%d rows shipped by a non-exchange operator the checker proved local",
				m.RowsShipped)
		}
	}
	// Hedge legality: speculative duplicates race partition work units,
	// which only per-partition operators run. Exchanges and the
	// coordinator Result execute on the query goroutine and must never
	// carry hedge counters.
	if m.Hedges > 0 || m.HedgeWins > 0 || m.HedgeWastedRows > 0 {
		switch ot.Kind {
		case trace.KindRepartition, trace.KindBroadcast, trace.KindGather,
			trace.KindDistinctByValue, trace.KindResult:
			bad(RuleTraceShip,
				"hedge counters (hedges=%d wins=%d wasted=%d) on a coordinator-side operator that never hedges",
				m.Hedges, m.HedgeWins, m.HedgeWastedRows)
		}
	}
	if m.HedgeWins > m.Hedges {
		bad(RuleTraceConserve, "hedge wins %d exceed hedges launched %d", m.HedgeWins, m.Hedges)
	}
	if m.DedupHits > 0 {
		switch ot.Kind {
		case trace.KindDistinctPref, trace.KindDistinctByValue,
			trace.KindRepartition, trace.KindBroadcast:
		default:
			bad(RuleTraceConserve, "%d dedup hits on a kind that never deduplicates", m.DedupHits)
		}
	}

	// Intra-operator conservation: what each kind may do to row counts.
	in, out, dedup := m.RowsIn, m.RowsOut, m.DedupHits
	nn := int64(tv.n)
	switch ot.Kind {
	case trace.KindProject:
		if out != in {
			bad(RuleTraceConserve, "projection must preserve cardinality: in=%d out=%d", in, out)
		}
	case trace.KindFilter, trace.KindTopK:
		if out > in {
			bad(RuleTraceConserve, "out=%d exceeds in=%d", out, in)
		}
	case trace.KindDistinctPref, trace.KindRepartition, trace.KindDistinctByValue:
		if out != in-dedup {
			bad(RuleTraceConserve, "rows lost or invented: in=%d dedup=%d out=%d", in, dedup, out)
		}
	case trace.KindBroadcast:
		if out != nn*(in-dedup) {
			bad(RuleTraceConserve, "broadcast must fan out to all %d nodes: in=%d dedup=%d out=%d",
				tv.n, in, dedup, out)
		}
	case trace.KindGather, trace.KindResult:
		if out != in {
			bad(RuleTraceConserve, "gather must preserve cardinality: in=%d out=%d", in, out)
		}
	case trace.KindAggregate, trace.KindPartialAgg:
		// Empty partitions of a global aggregation still emit an
		// identity state row each.
		if out > in+nn {
			bad(RuleTraceConserve, "aggregate emitted %d rows from %d inputs on %d nodes", out, in, tv.n)
		}
	case trace.KindFinalAgg:
		if out > in+1 {
			bad(RuleTraceConserve, "final merge emitted %d rows from %d partial states", out, in)
		}
	case trace.KindScan, trace.KindJoin:
		// Scans produce, joins multiply: no cardinality law links their
		// in/out counts.
	}
}

// checkEdge applies the inter-operator conservation law: an operator
// consumes exactly what its children produced. OneCopy exchanges read one
// of the n identical copies of a replicated input, so they consume
// childOut/n.
func (tv *traceVerifier) checkEdge(n plan.Node, ot *trace.OpTrace, children []*trace.OpTrace, vs *Violations) {
	if len(children) == 0 {
		return
	}
	var childOut int64
	for _, c := range children {
		childOut += c.Totals.RowsOut
	}
	in := ot.Totals.RowsIn
	if ot.ReadOne {
		in *= int64(tv.n)
	}
	if in != childOut {
		*vs = append(*vs, &Violation{Rule: RuleTraceConserve, Node: n,
			Detail: fmt.Sprintf("span %q: consumed %d rows but children produced %d%s",
				ot.Label, ot.Totals.RowsIn, childOut, readOneNote(ot))})
	}
}

func readOneNote(ot *trace.OpTrace) string {
	if ot.ReadOne {
		return " (OneCopy: expects n·in = child out)"
	}
	return ""
}

// accumulate folds one span into the query-wide sums for checkTotals.
func (tv *traceVerifier) accumulate(ot *trace.OpTrace) {
	m := &ot.Totals
	tv.sum.RowsShipped += m.RowsShipped
	tv.sum.BytesShipped += m.BytesShipped
	tv.sum.Work += m.Work
	tv.sum.Retries += m.Retries
	tv.sum.Failovers += m.Failovers
	tv.sum.WastedRows += m.WastedRows
	tv.sum.RecoveredRows += m.RecoveredRows
	tv.sum.Hedges += m.Hedges
	tv.sum.HedgeWins += m.HedgeWins
	tv.sum.HedgeWastedRows += m.HedgeWastedRows
	for _, nm := range ot.Nodes {
		if nm.Node >= 0 && nm.Node < len(tv.nodeWork) {
			tv.nodeWork[nm.Node] += nm.Work
		}
	}
	switch ot.Kind {
	case trace.KindRepartition, trace.KindDistinctByValue:
		tv.reparts++
	case trace.KindBroadcast:
		tv.bcasts++
	}
}

// checkTotals diffs the span sums against the query-level flat counters
// (engine.Stats, carried as trace.Totals).
func (tv *traceVerifier) checkTotals(tr *trace.Trace, vs *Violations) {
	t := tr.Totals
	bad := func(format string, args ...any) {
		*vs = append(*vs, &Violation{Rule: RuleTraceStats, Detail: fmt.Sprintf(format, args...)})
	}
	if tv.sum.RowsShipped != t.RowsShipped {
		bad("span RowsShipped sum %d != Stats.RowsShipped %d", tv.sum.RowsShipped, t.RowsShipped)
	}
	if tv.sum.BytesShipped != t.BytesShipped {
		bad("span BytesShipped sum %d != Stats.BytesShipped %d", tv.sum.BytesShipped, t.BytesShipped)
	}
	if tv.sum.Work != t.RowsProcessed {
		bad("span Work sum %d != Stats.RowsProcessed %d", tv.sum.Work, t.RowsProcessed)
	}
	if tv.sum.Retries != int64(t.Retries) {
		bad("span Retries sum %d != Stats.Retries %d", tv.sum.Retries, t.Retries)
	}
	if tv.sum.Failovers != int64(t.Failovers) {
		bad("span Failovers sum %d != Stats.Failovers %d", tv.sum.Failovers, t.Failovers)
	}
	if tv.sum.WastedRows != t.WastedRows {
		bad("span WastedRows sum %d != Stats.WastedRows %d", tv.sum.WastedRows, t.WastedRows)
	}
	if tv.sum.RecoveredRows != t.RecoveredRows {
		bad("span RecoveredRows sum %d != Stats.RecoveredRows %d", tv.sum.RecoveredRows, t.RecoveredRows)
	}
	if tv.sum.Hedges != int64(t.Hedges) {
		bad("span Hedges sum %d != Stats.Hedges %d", tv.sum.Hedges, t.Hedges)
	}
	if tv.sum.HedgeWins != int64(t.HedgeWins) {
		bad("span HedgeWins sum %d != Stats.HedgeWins %d", tv.sum.HedgeWins, t.HedgeWins)
	}
	if tv.sum.HedgeWastedRows != t.HedgeWastedRows {
		bad("span HedgeWastedRows sum %d != Stats.HedgeWastedRows %d", tv.sum.HedgeWastedRows, t.HedgeWastedRows)
	}
	var maxWork int64
	for _, w := range tv.nodeWork {
		if w > maxWork {
			maxWork = w
		}
	}
	if maxWork != t.MaxNodeRows {
		bad("max per-node span Work %d != Stats.MaxNodeRows %d", maxWork, t.MaxNodeRows)
	}
	if tv.reparts != t.Repartitions {
		bad("%d repartitioning spans != Stats.Repartitions %d", tv.reparts, t.Repartitions)
	}
	if tv.bcasts != t.Broadcasts {
		bad("%d broadcast spans != Stats.Broadcasts %d", tv.bcasts, t.Broadcasts)
	}
}
