package check

import (
	"fmt"

	"pref/internal/catalog"
	"pref/internal/partition"
	"pref/internal/plan"
	"pref/internal/value"
)

// info is the checker's independently derived annotation of one operator.
type info struct {
	prop *plan.Prop
	sch  plan.Schema
	// contentRepl records that the operator's *content* is identical on
	// every partition even when prop.Repl is false — true after a partial
	// aggregation or partial top-k over replicated input. Gather's OneCopy
	// flag is validated against this, not against prop.Repl.
	contentRepl bool
}

// checker re-derives the Dup/Part property algebra of Section 2.2 over a
// physical plan, bottom-up, with an implementation independent of the
// rewriter's, and diffs the result against the recorded annotations. The
// transfer rules mirror internal/plan's rewrite deliberately: if the two
// implementations ever drift, legitimate plans start failing verification,
// which is exactly the signal we want.
type checker struct {
	rw  *plan.Rewritten
	cat *catalog.Schema
	cfg *partition.Config

	vs      Violations
	memo    map[plan.Node]*info
	visited map[plan.Node]int // 0 new, 1 in progress, 2 done (cycle guard)
	aliases map[string]bool
	order   []plan.Node // reachable nodes, post-order, for the alias scan
}

func newChecker(rw *plan.Rewritten) *checker {
	return &checker{
		rw:      rw,
		cat:     rw.Catalog,
		cfg:     rw.Cfg,
		memo:    map[plan.Node]*info{},
		visited: map[plan.Node]int{},
		aliases: map[string]bool{},
	}
}

func (c *checker) report(rule Rule, n plan.Node, format string, args ...any) {
	c.vs = append(c.vs, &Violation{Rule: rule, Node: n, Detail: fmt.Sprintf(format, args...)})
}

// degenerate is the annotation used to keep walking after a node is too
// broken to derive properties for; it avoids cascading noise.
func degenerate(parts int) *info {
	return &info{prop: &plan.Prop{Parts: parts, Placed: map[string]plan.PlacedEntry{}}, sch: plan.Schema{}}
}

func (c *checker) visit(n plan.Node) *info {
	if n == nil {
		c.report(RuleMalformed, nil, "nil operator in plan tree")
		return degenerate(c.cfg.NumPartitions)
	}
	if in, ok := c.memo[n]; ok {
		if c.visited[n] == 1 {
			c.report(RuleMalformed, n, "plan graph contains a cycle through this operator")
		}
		return in
	}
	if c.visited[n] == 1 {
		c.report(RuleMalformed, n, "plan graph contains a cycle through this operator")
		return degenerate(c.cfg.NumPartitions)
	}
	c.visited[n] = 1
	in := c.derive(n)
	c.visited[n] = 2
	c.memo[n] = in
	c.order = append(c.order, n)
	c.diff(n, in)
	return in
}

// derive computes the node's annotation from its children's, reporting
// violations of the structural, locality, and duplicate-freedom rules.
func (c *checker) derive(n plan.Node) *info {
	switch n := n.(type) {
	case *plan.ScanNode:
		return c.deriveScan(n)
	case *plan.FilterNode:
		return c.deriveFilter(n)
	case *plan.ProjectNode:
		return c.deriveProject(n)
	case *plan.JoinNode:
		return c.deriveJoin(n)
	case *plan.AggregateNode:
		return c.deriveAggregate(n)
	case *plan.PartialAggNode:
		return c.derivePartialAgg(n)
	case *plan.FinalAggNode:
		return c.deriveFinalAgg(n)
	case *plan.TopKNode:
		return c.deriveTopK(n)
	case *plan.RepartitionNode:
		return c.deriveRepartition(n)
	case *plan.BroadcastNode:
		return c.deriveBroadcast(n)
	case *plan.GatherNode:
		return c.deriveGather(n)
	case *plan.DistinctPrefNode:
		return c.deriveDistinctPref(n)
	case *plan.DistinctByValueNode:
		return c.deriveDistinctByValue(n)
	default:
		c.report(RuleMalformed, n, "unknown operator type %T", n)
		return degenerate(c.cfg.NumPartitions)
	}
}

func (c *checker) deriveScan(n *plan.ScanNode) *info {
	t := c.cat.Table(n.Table)
	if t == nil {
		c.report(RuleMalformed, n, "scan of unknown table %s", n.Table)
		return degenerate(c.cfg.NumPartitions)
	}
	if c.aliases[n.Alias] {
		c.report(RuleMalformed, n, "duplicate alias %s: two scans would collide in the qualified namespace", n.Alias)
	}
	c.aliases[n.Alias] = true
	ts := c.cfg.Scheme(n.Table)
	if ts == nil {
		c.report(RuleMalformed, n, "table %s has no partitioning scheme", n.Table)
		return degenerate(c.cfg.NumPartitions)
	}

	sch := make(plan.Schema, 0, t.NumCols()+2)
	for _, col := range t.Columns {
		sch = append(sch, plan.Field{Name: plan.Qualify(n.Alias, col.Name), Kind: col.Kind})
	}
	prop := &plan.Prop{Parts: c.cfg.NumPartitions, Placed: map[string]plan.PlacedEntry{}}
	switch ts.Method {
	case partition.Replicated:
		prop.Repl = true
	case partition.Hash:
		prop.HashCols = qualify(n.Alias, ts.Cols)
		prop.Placed[n.Alias] = plan.PlacedEntry{Table: n.Table, Scheme: ts}
	case partition.Pref:
		sch = append(sch,
			plan.Field{Name: plan.DupCol(n.Alias), Kind: value.Int},
			plan.Field{Name: plan.HasRefCol(n.Alias), Kind: value.Int},
		)
		prop.Placed[n.Alias] = plan.PlacedEntry{Table: n.Table, Scheme: ts}
		if mapped, ok := c.cfg.HashEquivalent(n.Table); ok {
			prop.HashCols = qualify(n.Alias, mapped)
		} else if !c.cfg.DupFree(c.cat, n.Table) {
			prop.DupCols = []string{plan.DupCol(n.Alias)}
		}
	default:
		prop.Placed[n.Alias] = plan.PlacedEntry{Table: n.Table, Scheme: ts}
	}

	if n.Prune != nil {
		if prop.Repl {
			c.report(RuleMalformed, n, "partition pruning on a replicated table")
		}
		for _, p := range n.Prune {
			if p < 0 || p >= c.cfg.NumPartitions {
				c.report(RuleMalformed, n, "pruned partition %d out of range [0,%d)", p, c.cfg.NumPartitions)
			}
		}
	}
	return &info{prop: prop, sch: sch, contentRepl: prop.Repl}
}

func (c *checker) deriveFilter(n *plan.FilterNode) *info {
	ci := c.visit(n.Child)
	if n.Pred == nil {
		c.report(RuleMalformed, n, "filter with nil predicate")
	} else if _, err := n.Pred.Bind(ci.sch); err != nil {
		c.report(RuleMalformed, n, "predicate does not bind: %v", err)
	}
	return &info{prop: ci.prop.Clone(), sch: ci.sch, contentRepl: ci.contentRepl}
}

func (c *checker) deriveProject(n *plan.ProjectNode) *info {
	ci := c.visit(n.Child)
	if ci.prop.Dup() {
		c.report(RuleDupLeak, n,
			"projection over input with live dup columns %v (Section 2.2 requires PREF-duplicate elimination first)",
			ci.prop.DupCols)
	}
	if len(n.Exprs) != len(n.Names) {
		c.report(RuleMalformed, n, "projection arity mismatch: %d exprs, %d names", len(n.Exprs), len(n.Names))
		return &info{prop: ci.prop.Clone(), sch: plan.Schema{}, contentRepl: ci.contentRepl}
	}
	out := make(plan.Schema, len(n.Exprs))
	for i, e := range n.Exprs {
		if e == nil {
			c.report(RuleMalformed, n, "nil projection expression for %q", n.Names[i])
			out[i] = plan.Field{Name: n.Names[i], Kind: value.Int}
			continue
		}
		if _, err := e.Bind(ci.sch); err != nil {
			c.report(RuleMalformed, n, "projection %q does not bind: %v", n.Names[i], err)
		}
		out[i] = plan.Field{Name: n.Names[i], Kind: e.Kind(ci.sch)}
	}
	return &info{prop: ci.prop.Clone(), sch: out, contentRepl: ci.contentRepl}
}

func (c *checker) deriveAggregate(n *plan.AggregateNode) *info {
	ci := c.visit(n.Child)
	cp := ci.prop
	c.checkAggBinds(n, n.GroupBy, n.Aggs, ci.sch)

	if cp.Dup() {
		c.report(RuleDupLeak, n, "aggregation over input with live dup columns %v", cp.DupCols)
	}

	if len(n.GroupBy) == 0 {
		// Physical plans only contain a group-less AggregateNode above a
		// Gather (the COUNT DISTINCT fallback); anywhere else the partial/
		// final pair should have been used and a bare global aggregate
		// would double-count across partitions.
		if !cp.Gathered && !cp.Repl {
			c.report(RuleLocality, n, "global aggregate over partitioned, un-gathered input")
		}
		out := make(plan.Schema, 0, len(n.Aggs))
		for _, a := range n.Aggs {
			out = append(out, plan.Field{Name: a.As, Kind: c.kindOfAgg(a, ci.sch)})
		}
		return &info{prop: &plan.Prop{Parts: cp.Parts, Gathered: true}, sch: out}
	}

	// Grouped aggregation is local-safe iff each node holds every row of
	// each of its groups: replicated input, or hash placement covered by
	// the group-by columns (modulo upstream equivalences).
	if !cp.Repl && !(cp.HashCols != nil && hashCoveredBy(cp, n.GroupBy)) {
		c.report(RuleLocality, n,
			"grouped aggregation over input not co-partitioned by its group (method %s, hash %v, group-by %v)",
			cp.Method(), cp.HashCols, n.GroupBy)
	}

	out := make(plan.Schema, 0, len(n.GroupBy)+len(n.Aggs))
	for _, g := range n.GroupBy {
		i := ci.sch.Index(g)
		kind := value.Int
		if i >= 0 {
			kind = ci.sch[i].Kind
		}
		out = append(out, plan.Field{Name: g, Kind: kind})
	}
	for _, a := range n.Aggs {
		out = append(out, plan.Field{Name: a.As, Kind: c.kindOfAgg(a, ci.sch)})
	}
	np := &plan.Prop{Parts: cp.Parts, Repl: cp.Repl, Placed: map[string]plan.PlacedEntry{}}
	if allIn(cp.HashCols, n.GroupBy) {
		np.HashCols = append([]string(nil), cp.HashCols...)
	}
	return &info{prop: np, sch: out, contentRepl: cp.Repl}
}

func (c *checker) derivePartialAgg(n *plan.PartialAggNode) *info {
	ci := c.visit(n.Child)
	if ci.prop.Dup() {
		c.report(RuleDupLeak, n, "partial aggregation over input with live dup columns %v", ci.prop.DupCols)
	}
	c.checkAggBinds(n, n.GroupBy, n.Aggs, ci.sch)
	return &info{
		prop:        &plan.Prop{Parts: ci.prop.Parts},
		sch:         c.partialSchema(n.GroupBy, n.Aggs, ci.sch),
		contentRepl: ci.contentRepl,
	}
}

func (c *checker) deriveFinalAgg(n *plan.FinalAggNode) *info {
	ci := c.visit(n.Child)
	if !ci.prop.Gathered {
		c.report(RuleLocality, n, "final aggregate over un-gathered partials (method %s)", ci.prop.Method())
	}
	// A FinalAgg reads its partner PartialAgg's state columns (a.As, or
	// a.As$sum/$cnt for AVG) from the gathered schema; the Arg expressions
	// are not re-bound. Output kinds follow the state columns.
	out := make(plan.Schema, 0, len(n.GroupBy)+len(n.Aggs))
	for _, g := range n.GroupBy {
		i := ci.sch.Index(g)
		kind := value.Int
		if i < 0 {
			c.report(RuleMalformed, n, "group-by column %q not in partial schema %v", g, ci.sch.Names())
		} else {
			kind = ci.sch[i].Kind
		}
		out = append(out, plan.Field{Name: g, Kind: kind})
	}
	for _, a := range n.Aggs {
		kind := value.Int
		switch a.Fn {
		case plan.CountFn, plan.CountDistinctFn:
			kind = value.Int
			if ci.sch.Index(a.As) < 0 {
				c.report(RuleMalformed, n, "partial state column %q missing from %v", a.As, ci.sch.Names())
			}
		case plan.AvgFn:
			kind = value.Float
			if ci.sch.Index(a.As+"$sum") < 0 || ci.sch.Index(a.As+"$cnt") < 0 {
				c.report(RuleMalformed, n, "AVG partial state columns for %q missing from %v", a.As, ci.sch.Names())
			}
		default:
			i := ci.sch.Index(a.As)
			if i < 0 {
				c.report(RuleMalformed, n, "partial state column %q missing from %v", a.As, ci.sch.Names())
			} else {
				kind = ci.sch[i].Kind
			}
		}
		out = append(out, plan.Field{Name: a.As, Kind: kind})
	}
	return &info{prop: &plan.Prop{Parts: ci.prop.Parts, Gathered: true}, sch: out}
}

func (c *checker) deriveTopK(n *plan.TopKNode) *info {
	ci := c.visit(n.Child)
	for _, o := range n.Order {
		if ci.sch.Index(o.Col) < 0 {
			c.report(RuleMalformed, n, "order column %q not in input schema %v", o.Col, ci.sch.Names())
		}
	}
	if n.Final {
		if !ci.prop.Gathered {
			c.report(RuleLocality, n, "final top-k over un-gathered input (method %s)", ci.prop.Method())
		}
		return &info{prop: &plan.Prop{Parts: ci.prop.Parts, Gathered: true}, sch: ci.sch}
	}
	if ci.prop.Dup() {
		c.report(RuleDupLeak, n,
			"partial top-k over input with live dup columns %v (duplicate copies would crowd out distinct rows)",
			ci.prop.DupCols)
	}
	return &info{prop: &plan.Prop{Parts: ci.prop.Parts}, sch: ci.sch, contentRepl: ci.contentRepl}
}

func (c *checker) deriveRepartition(n *plan.RepartitionNode) *info {
	ci := c.visit(n.Child)
	cp := ci.prop
	if len(n.Cols) == 0 {
		c.report(RuleMalformed, n, "repartition with no hash columns")
	}
	for _, col := range n.Cols {
		if ci.sch.Index(col) < 0 {
			c.report(RuleMalformed, n, "repartition column %q not in input schema %v", col, ci.sch.Names())
		}
	}
	c.checkShipDedup(n, n.DupCols, cp, ci.sch)
	if n.OneCopy != cp.Repl {
		c.report(RuleMalformed, n, "OneCopy=%v disagrees with input replication %v", n.OneCopy, cp.Repl)
	}
	np := &plan.Prop{
		Parts:    cp.Parts,
		HashCols: append([]string(nil), n.Cols...),
		Placed:   map[string]plan.PlacedEntry{},
	}
	return &info{prop: np, sch: ci.sch}
}

func (c *checker) deriveBroadcast(n *plan.BroadcastNode) *info {
	ci := c.visit(n.Child)
	cp := ci.prop
	c.checkShipDedup(n, n.DupCols, cp, ci.sch)
	if n.OneCopy != cp.Repl {
		c.report(RuleMalformed, n, "OneCopy=%v disagrees with input replication %v", n.OneCopy, cp.Repl)
	}
	np := &plan.Prop{Parts: cp.Parts, Repl: true, Placed: map[string]plan.PlacedEntry{}}
	return &info{prop: np, sch: ci.sch, contentRepl: true}
}

// checkShipDedup validates a shipping operator's in-flight dedup list: it
// must cover every live dup column of the input (a missed column ships
// PREF duplicates into a placement that can no longer tell them apart),
// and every listed column must exist.
func (c *checker) checkShipDedup(n plan.Node, dedup []string, cp *plan.Prop, sch plan.Schema) {
	for _, col := range dedup {
		if sch.Index(col) < 0 {
			c.report(RuleMalformed, n, "dedup column %q not in input schema %v", col, sch.Names())
		}
	}
	for _, live := range cp.DupCols {
		found := false
		for _, d := range dedup {
			if d == live {
				found = true
				break
			}
		}
		if !found {
			c.report(RuleDupLeak, n, "ships live dup column %v without deduplicating on it", live)
		}
	}
}

func (c *checker) deriveGather(n *plan.GatherNode) *info {
	ci := c.visit(n.Child)
	if ci.prop.Dup() {
		c.report(RuleDupLeak, n, "gather ships live dup columns %v to the coordinator", ci.prop.DupCols)
	}
	if n.OneCopy != ci.contentRepl {
		c.report(RuleMalformed, n, "OneCopy=%v disagrees with input content replication %v", n.OneCopy, ci.contentRepl)
	}
	return &info{prop: &plan.Prop{Parts: ci.prop.Parts, Gathered: true}, sch: ci.sch}
}

func (c *checker) deriveDistinctPref(n *plan.DistinctPrefNode) *info {
	ci := c.visit(n.Child)
	cp := ci.prop
	for _, col := range n.DupCols {
		if ci.sch.Index(col) < 0 {
			c.report(RuleMalformed, n, "dup column %q not in input schema %v", col, ci.sch.Names())
		}
	}
	for _, live := range cp.DupCols {
		found := false
		for _, d := range n.DupCols {
			if d == live {
				found = true
				break
			}
		}
		if !found {
			c.report(RuleDupLeak, n, "distinct-pref does not filter live dup column %v", live)
		}
	}
	np := cp.Clone()
	np.DupCols = nil
	return &info{prop: np, sch: ci.sch, contentRepl: ci.contentRepl}
}

func (c *checker) deriveDistinctByValue(n *plan.DistinctByValueNode) *info {
	ci := c.visit(n.Child)
	var want []string
	for _, f := range ci.sch {
		if !plan.IsHiddenCol(f.Name) {
			want = append(want, f.Name)
		}
	}
	if !sameCols(n.Cols, want) {
		c.report(RuleMalformed, n, "value-distinct identity columns %v differ from visible schema %v", n.Cols, want)
	}
	np := ci.prop.Clone()
	np.DupCols = nil
	np.HashCols = nil
	np.Placed = map[string]plan.PlacedEntry{}
	return &info{prop: np, sch: ci.sch, contentRepl: ci.contentRepl}
}

// checkRoot enforces the output contract: the root must be duplicate-free
// and expose no hidden index columns.
func (c *checker) checkRoot(root plan.Node, in *info) {
	if in.prop.Dup() {
		c.report(RuleDupLeak, root, "plan root has live dup columns %v: results would contain PREF duplicates", in.prop.DupCols)
	}
	for _, f := range in.sch {
		if plan.IsHiddenCol(f.Name) {
			c.report(RuleDupLeak, root, "plan root leaks hidden index column %q", f.Name)
		}
	}
}

// diff compares the checker's derived annotation against what the rewrite
// recorded for the node.
func (c *checker) diff(n plan.Node, in *info) {
	rec, ok := c.rw.Props[n]
	if !ok || rec == nil {
		c.report(RuleMalformed, n, "operator has no recorded properties")
		return
	}
	recSch, ok := c.rw.Schemas[n]
	if !ok {
		c.report(RuleMalformed, n, "operator has no recorded schema")
	} else if !schemaEqual(recSch, in.sch) {
		c.report(RuleStaleProp, n, "recorded schema %v differs from derived %v", describeSchema(recSch), describeSchema(in.sch))
	}

	d := in.prop
	if rec.Parts != d.Parts {
		c.report(RuleStaleProp, n, "recorded Parts=%d, derived %d", rec.Parts, d.Parts)
	}
	if rec.Repl != d.Repl {
		c.report(RuleStaleProp, n, "recorded Repl=%v, derived %v", rec.Repl, d.Repl)
	}
	if rec.Gathered != d.Gathered {
		c.report(RuleStaleProp, n, "recorded Gathered=%v, derived %v", rec.Gathered, d.Gathered)
	}
	if !hashColsEqual(rec.HashCols, d.HashCols) {
		c.report(RuleStaleProp, n, "recorded HashCols=%v, derived %v", rec.HashCols, d.HashCols)
	}
	if !colSetEqual(rec.DupCols, d.DupCols) {
		c.report(RuleStaleProp, n, "recorded DupCols=%v, derived %v", rec.DupCols, d.DupCols)
	}
	if !placedEqual(rec.Placed, d.Placed) {
		c.report(RuleStaleProp, n, "recorded Placed=%v, derived %v", placedKeys(rec.Placed), placedKeys(d.Placed))
	}
	// Equiv is not diffed: it is derived bookkeeping whose class order is
	// an implementation detail; the checker recomputes its own for the
	// locality decisions above.
}

// checkAliasing verifies that no recorded Prop column slice shares its
// backing array with another operator's recorded Prop or with a plan
// node's own slice: an append through either alias would silently corrupt
// the other (the runtime complement of the propalias lint rule). Sharing
// between two plan-node slices is deliberate (physJoin reuses the logical
// node's column lists) and not flagged.
func (c *checker) checkAliasing() {
	type slot struct {
		n     plan.Node
		field string
	}
	propOwner := map[*string]slot{} // backing array -> first Prop field using it
	seenProp := map[*plan.Prop]plan.Node{}

	for _, n := range c.order {
		rec := c.rw.Props[n]
		if rec == nil {
			continue
		}
		if prev, dup := seenProp[rec]; dup {
			c.report(RulePropAlias, n, "same *Prop recorded for two operators (also %s); a mutation through one corrupts the other", prev)
			continue
		}
		seenProp[rec] = n
		for _, f := range []struct {
			name string
			s    []string
		}{{"HashCols", rec.HashCols}, {"DupCols", rec.DupCols}} {
			if len(f.s) == 0 {
				continue
			}
			key := &f.s[0]
			if prev, dup := propOwner[key]; dup {
				c.report(RulePropAlias, n, "Prop.%s shares its backing array with %s of %s", f.name, prev.field, prev.n)
				continue
			}
			propOwner[key] = slot{n, "Prop." + f.name}
		}
	}

	for _, n := range c.order {
		for _, f := range nodeSlices(n) {
			if len(f.s) == 0 {
				continue
			}
			if prev, dup := propOwner[&f.s[0]]; dup {
				c.report(RulePropAlias, n, "node field %s shares its backing array with %s of %s", f.name, prev.field, prev.n)
			}
		}
	}
}

type namedSlice struct {
	name string
	s    []string
}

// nodeSlices enumerates the []string fields a plan operator owns.
func nodeSlices(n plan.Node) []namedSlice {
	switch n := n.(type) {
	case *plan.JoinNode:
		return []namedSlice{{"LeftCols", n.LeftCols}, {"RightCols", n.RightCols}}
	case *plan.RepartitionNode:
		return []namedSlice{{"Cols", n.Cols}, {"DupCols", n.DupCols}}
	case *plan.BroadcastNode:
		return []namedSlice{{"DupCols", n.DupCols}}
	case *plan.DistinctPrefNode:
		return []namedSlice{{"DupCols", n.DupCols}}
	case *plan.DistinctByValueNode:
		return []namedSlice{{"Cols", n.Cols}}
	case *plan.AggregateNode:
		return []namedSlice{{"GroupBy", n.GroupBy}}
	case *plan.PartialAggNode:
		return []namedSlice{{"GroupBy", n.GroupBy}}
	case *plan.FinalAggNode:
		return []namedSlice{{"GroupBy", n.GroupBy}}
	case *plan.ProjectNode:
		return []namedSlice{{"Names", n.Names}}
	default:
		return nil
	}
}

// ---- helpers shared by the transfer rules ----

func (c *checker) checkAggBinds(n plan.Node, groupBy []string, aggs []plan.AggExpr, sch plan.Schema) {
	for _, g := range groupBy {
		if sch.Index(g) < 0 {
			c.report(RuleMalformed, n, "group-by column %q not in input schema %v", g, sch.Names())
		}
	}
	for _, a := range aggs {
		if a.Arg != nil {
			if _, err := a.Arg.Bind(sch); err != nil {
				c.report(RuleMalformed, n, "aggregate %s argument does not bind: %v", a.As, err)
			}
		}
	}
}

// kindOfAgg mirrors the rewriter's aggregate output typing.
func (c *checker) kindOfAgg(a plan.AggExpr, in plan.Schema) value.Kind {
	switch a.Fn {
	case plan.CountFn, plan.CountDistinctFn:
		return value.Int
	case plan.AvgFn:
		return value.Float
	default:
		if a.Arg != nil {
			return a.Arg.Kind(in)
		}
		return value.Int
	}
}

// partialSchema mirrors the rewriter's PartialAgg state layout.
func (c *checker) partialSchema(groupBy []string, aggs []plan.AggExpr, in plan.Schema) plan.Schema {
	out := make(plan.Schema, 0, len(groupBy)+len(aggs)+1)
	for _, g := range groupBy {
		kind := value.Int
		if i := in.Index(g); i >= 0 {
			kind = in[i].Kind
		}
		out = append(out, plan.Field{Name: g, Kind: kind})
	}
	for _, a := range aggs {
		if a.Fn == plan.AvgFn {
			out = append(out,
				plan.Field{Name: a.As + "$sum", Kind: value.Float},
				plan.Field{Name: a.As + "$cnt", Kind: value.Int})
		} else {
			out = append(out, plan.Field{Name: a.As, Kind: c.kindOfAgg(a, in)})
		}
	}
	return out
}

// allIn reports whether every element of a appears literally in b
// (false for empty a, matching the rewriter's hash-survival rule).
func allIn(a, b []string) bool {
	if len(a) == 0 {
		return false
	}
	for _, x := range a {
		ok := false
		for _, y := range b {
			if x == y {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// hashCoveredBy reports whether every hash column is among the group-by
// columns, directly or via an equivalence.
func hashCoveredBy(p *plan.Prop, groupBy []string) bool {
	if len(p.HashCols) == 0 {
		return false
	}
	for _, h := range p.HashCols {
		ok := false
		for _, g := range groupBy {
			if p.EquivSame(h, g) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func qualify(alias string, cols []string) []string {
	out := make([]string, len(cols))
	for i, col := range cols {
		out[i] = plan.Qualify(alias, col)
	}
	return out
}

func sameCols(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hashColsEqual treats nil and empty as equal, and otherwise compares in
// order (hash placement is positional).
func hashColsEqual(a, b []string) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return sameCols(a, b)
}

// colSetEqual compares column lists as sets (dup-column order is
// insignificant: the disjunctive filter commutes).
func colSetEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[string]int{}
	for _, x := range a {
		m[x]++
	}
	for _, x := range b {
		m[x]--
		if m[x] < 0 {
			return false
		}
	}
	return true
}

func placedEqual(a, b map[string]plan.PlacedEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || va.Table != vb.Table || va.Scheme != vb.Scheme {
			return false
		}
	}
	return true
}

func placedKeys(m map[string]plan.PlacedEntry) []string {
	out := make([]string, 0, len(m))
	for k, v := range m {
		out = append(out, k+":"+v.Table)
	}
	return out
}

func schemaEqual(a, b plan.Schema) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Kind != b[i].Kind {
			return false
		}
	}
	return true
}

func describeSchema(s plan.Schema) []string {
	out := make([]string, len(s))
	for i, f := range s {
		out[i] = fmt.Sprintf("%s:%v", f.Name, f.Kind)
	}
	return out
}
