package check

import (
	"fmt"
	"math/rand"

	"pref/internal/catalog"
	"pref/internal/partition"
	"pref/internal/plan"
	"pref/internal/value"
)

// Scenario generators for property-based tests. They live in the package
// proper (not a _test.go file) so the engine's trace-invariant property
// tests can drive the same random schema/design/query space the checker's
// own fuzz tests cover.

// GenSchema builds a random 2–5 table catalog. Columns are Int so any
// column pair is equi-join compatible; the first column is the PK.
func GenSchema(rng *rand.Rand) *catalog.Schema {
	s := catalog.NewSchema("fuzz")
	nt := 2 + rng.Intn(4)
	for ti := 0; ti < nt; ti++ {
		nc := 2 + rng.Intn(4)
		cols := make([]catalog.Column, nc)
		for ci := 0; ci < nc; ci++ {
			cols[ci] = catalog.Column{Name: fmt.Sprintf("t%dc%d", ti, ci), Kind: value.Int}
		}
		t, err := catalog.NewTable(fmt.Sprintf("t%d", ti), cols, cols[0].Name)
		if err != nil {
			continue // unreachable for generated shapes; skip defensively
		}
		if err := s.AddTable(t); err != nil {
			continue
		}
	}
	return s
}

// GenConfig assigns each table a random scheme. PREF schemes only
// reference lower-numbered, non-replicated tables, so chains are acyclic
// by construction and always bottom out at a properly partitioned seed
// (VerifyDesign rejects replicated seeds, which Config.Validate tolerates).
func GenConfig(rng *rand.Rand, s *catalog.Schema) *partition.Config {
	cfg := partition.NewConfig(2 + rng.Intn(4))
	names := s.TableNames()
	var seedable []string
	for _, name := range names {
		t := s.Table(name)
		switch r := rng.Intn(4); {
		case r == 0 && len(seedable) > 0:
			ref := s.Table(seedable[rng.Intn(len(seedable))])
			// Reference a random column pair; referencing the PK sometimes
			// makes the chain hash-equivalent or redundancy-free, so all
			// three dup regimes are exercised.
			rc := t.Columns[rng.Intn(t.NumCols())].Name
			sc := ref.Columns[rng.Intn(ref.NumCols())].Name
			cfg.SetPref(name, ref.Name, []string{rc}, []string{sc})
			seedable = append(seedable, name)
		case r == 1:
			cfg.SetReplicated(name)
		default:
			cfg.SetHash(name, t.Columns[rng.Intn(t.NumCols())].Name)
			seedable = append(seedable, name)
		}
	}
	return cfg
}

// GenQuery builds a random left-deep SPJA plan over 1–3 distinct tables,
// optionally topped by a filter, an aggregate, or a top-k.
func GenQuery(rng *rand.Rand, s *catalog.Schema) plan.Node {
	names := s.TableNames()
	nscan := 1 + rng.Intn(3)
	if nscan > len(names) {
		nscan = len(names)
	}
	perm := rng.Perm(len(names))[:nscan]

	alias := func(i int) string { return fmt.Sprintf("a%d", i) }
	qcols := func(i int) []string {
		t := s.Table(names[perm[i]])
		out := make([]string, t.NumCols())
		for ci, col := range t.Columns {
			out[ci] = plan.Qualify(alias(i), col.Name)
		}
		return out
	}

	var root plan.Node = plan.Scan(names[perm[0]], alias(0))
	cols := qcols(0)
	for i := 1; i < nscan; i++ {
		right := plan.Scan(names[perm[i]], alias(i))
		rcols := qcols(i)
		jt := plan.Inner
		switch rng.Intn(4) {
		case 1:
			jt = plan.Semi
		case 2:
			jt = plan.Anti
		case 3:
			jt = plan.LeftOuter
		}
		lc := cols[rng.Intn(len(cols))]
		rc := rcols[rng.Intn(len(rcols))]
		root = plan.Join(root, right, jt, []string{lc}, []string{rc})
		if jt == plan.Semi || jt == plan.Anti {
			continue // right columns do not survive
		}
		cols = append(append([]string(nil), cols...), rcols...)
	}

	if rng.Intn(2) == 0 {
		root = plan.Filter(root, plan.Gt(plan.Col(cols[rng.Intn(len(cols))]), plan.Lit(int64(rng.Intn(50)))))
	}
	switch rng.Intn(4) {
	case 0:
		g := cols[rng.Intn(len(cols))]
		root = plan.Aggregate(root, []string{g}, plan.Count("cnt"),
			plan.Sum(plan.Col(cols[rng.Intn(len(cols))]), "s"))
	case 1:
		root = plan.Aggregate(root, nil, plan.Count("cnt"))
	case 2:
		root = plan.TopK(root, 1+rng.Intn(10), plan.OrderSpec{Col: cols[rng.Intn(len(cols))]})
	}
	return root
}
