package check_test

import (
	"testing"

	"pref/internal/catalog"
	"pref/internal/check"
	"pref/internal/engine"
	"pref/internal/partition"
	"pref/internal/plan"
	"pref/internal/table"
	"pref/internal/trace"
	"pref/internal/value"
)

// traceFixture executes a PREF-chain join+aggregate query with tracing on
// and returns the plan and its (valid) trace. Each corruption test then
// damages one exported field and asserts the matching rule fires —
// VerifyTrace must be able to tell a recorded trace from a doctored one.
func traceFixture(t *testing.T) (*plan.Rewritten, *trace.Trace) {
	t.Helper()
	s := catalog.NewSchema("tv")
	s.MustAddTable(catalog.MustTable("users",
		[]catalog.Column{{Name: "uid", Kind: value.Int}, {Name: "region", Kind: value.Int}}, "uid"))
	s.MustAddTable(catalog.MustTable("orders",
		[]catalog.Column{{Name: "oid", Kind: value.Int}, {Name: "uid", Kind: value.Int}, {Name: "qty", Kind: value.Int}}, "oid"))
	db := table.NewDatabase(s)
	for i := int64(0); i < 30; i++ {
		db.Tables["users"].MustAppend(value.Tuple{i, i % 4})
	}
	for i := int64(0); i < 90; i++ {
		db.Tables["orders"].MustAppend(value.Tuple{i, i % 30, i % 7})
	}
	cfg := partition.NewConfig(4)
	cfg.SetHash("orders", "uid")
	cfg.SetPref("users", "orders", []string{"uid"}, []string{"uid"})

	pdb, err := partition.Apply(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := plan.Aggregate(
		plan.Join(plan.Scan("users", "u"), plan.Scan("orders", "o"),
			plan.Inner, []string{"u.uid"}, []string{"o.uid"}),
		[]string{"u.region"}, plan.Count("cnt"))
	rw, err := plan.Rewrite(q, s, cfg, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.ExecuteOpts(rw, pdb, engine.ExecOptions{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.VerifyTrace(rw, res.Trace); err != nil {
		t.Fatalf("fixture trace must verify cleanly: %v", err)
	}
	return rw, res.Trace
}

// findSpan returns the first span of the given kind, walking root-first.
func findSpan(tr *trace.Trace, kind trace.Kind) *trace.OpTrace {
	var hit *trace.OpTrace
	tr.Walk(func(ot *trace.OpTrace) {
		if hit == nil && ot.Kind == kind {
			hit = ot
		}
	})
	return hit
}

func assertRule(t *testing.T, err error, rule check.Rule) {
	t.Helper()
	if err == nil {
		t.Fatalf("corruption not detected, want rule %s", rule)
	}
	if !check.ViolationsOf(err).HasRule(rule) {
		t.Fatalf("got %v, want a %s violation", err, rule)
	}
}

func TestVerifyTraceRejectsMissingTrace(t *testing.T) {
	rw, _ := traceFixture(t)
	assertRule(t, check.VerifyTrace(rw, nil), check.RuleTraceShape)
	assertRule(t, check.VerifyTrace(rw, &trace.Trace{}), check.RuleTraceShape)
}

func TestVerifyTraceRejectsWrongRoot(t *testing.T) {
	rw, tr := traceFixture(t)
	tr.Root.Kind = trace.KindGather
	assertRule(t, check.VerifyTrace(rw, tr), check.RuleTraceShape)
}

func TestVerifyTraceRejectsUnexecutedSpan(t *testing.T) {
	rw, tr := traceFixture(t)
	findSpan(tr, trace.KindScan).Kind = trace.KindUnexecuted
	assertRule(t, check.VerifyTrace(rw, tr), check.RuleTraceShape)
}

func TestVerifyTraceRejectsIllegalShip(t *testing.T) {
	rw, tr := traceFixture(t)
	// The PREF chain keeps this join local; claiming it shipped rows is
	// exactly the locality regression VerifyTrace exists to catch.
	j := findSpan(tr, trace.KindJoin)
	if j == nil {
		t.Fatal("fixture has no join span")
	}
	if j.Totals.RowsShipped != 0 {
		t.Fatalf("fixture join already ships %d rows", j.Totals.RowsShipped)
	}
	j.Totals.RowsShipped = 10
	assertRule(t, check.VerifyTrace(rw, tr), check.RuleTraceShip)
}

func TestVerifyTraceRejectsInventedRows(t *testing.T) {
	rw, tr := traceFixture(t)
	// A filter (the dup=0 scan filter) or projection emitting more rows
	// than it consumed breaks the intra-operator law; any span works via
	// the edge law, so corrupt the plan-root side deterministically.
	span := tr.Root.Children[0]
	span.Totals.RowsOut += 3
	assertRule(t, check.VerifyTrace(rw, tr), check.RuleTraceConserve)
}

func TestVerifyTraceRejectsIllegalDedup(t *testing.T) {
	rw, tr := traceFixture(t)
	findSpan(tr, trace.KindJoin).Totals.DedupHits = 2
	assertRule(t, check.VerifyTrace(rw, tr), check.RuleTraceConserve)
}

func TestVerifyTraceRejectsStatsDrift(t *testing.T) {
	rw, tr := traceFixture(t)
	tr.Totals.RowsProcessed += 5
	assertRule(t, check.VerifyTrace(rw, tr), check.RuleTraceStats)

	rw2, tr2 := traceFixture(t)
	tr2.Totals.MaxNodeRows++
	assertRule(t, check.VerifyTrace(rw2, tr2), check.RuleTraceStats)

	rw3, tr3 := traceFixture(t)
	tr3.Totals.Repartitions++
	assertRule(t, check.VerifyTrace(rw3, tr3), check.RuleTraceStats)
}
