// Package check statically verifies the invariants the PREF rewrite and
// partitioning design rely on, without executing anything — the
// correctness analogue of a sanitizer for the query engine.
//
// It has two prongs:
//
//   - Verify walks a rewritten physical plan and re-derives the Dup/Part
//     property algebra of Section 2.2 bottom-up with an independent
//     implementation, then diffs the result against what the rewrite
//     recorded. On the way it proves join locality (every hash join's
//     inputs co-partitioned on the join keys, or preceded by a
//     Repartition/Broadcast), duplicate-freedom (no live dup columns
//     survive into aggregates, order-by, projections, or the root), and
//     that no Prop slice is aliased across operators.
//   - VerifyDesign checks a partitioning configuration against a catalog
//     schema: PREF predicate chains must be acyclic, rooted at a proper
//     seed table (Section 2.1, Definition 1), and reference only existing
//     columns with equi-join-compatible types.
//
// A plan that silently violates these invariants produces wrong answers,
// not crashes, which is why they are checked statically before any tuple
// moves. The engine runs Verify before every Execute when the PREF_VERIFY
// debug flag (or ExecOptions.Verify) is set; cmd/prefcheck runs both
// prongs from the command line.
package check

import (
	"errors"
	"fmt"
	"strings"

	"pref/internal/plan"
)

// Rule identifies one class of checked invariant.
type Rule string

// Plan rules (Verify).
const (
	// RuleMalformed marks structurally broken plans: unknown tables or
	// columns, missing annotations, schema/arity mismatches, OneCopy flags
	// that disagree with the input's replication, cyclic plan graphs.
	RuleMalformed Rule = "malformed"
	// RuleStaleProp marks recorded Dup/Part properties that differ from
	// the independently recomputed ones (the rewrite recorded a claim it
	// cannot prove, or a weaker claim than it could).
	RuleStaleProp Rule = "stale-prop"
	// RuleLocality marks joins and aggregations whose inputs are not
	// provably co-partitioned and not preceded by a Repartition/Broadcast
	// (the Section 2.2 co-location cases).
	RuleLocality Rule = "locality"
	// RuleDupLeak marks live PREF duplicate columns surviving into an
	// operator that must see duplicate-free input (aggregates, top-k,
	// projections, shipping operators that do not dedup, the plan root).
	RuleDupLeak Rule = "dup-leak"
	// RulePropAlias marks Prop column slices aliased across operators or
	// with plan-node slices (an append through one alias corrupts the
	// other).
	RulePropAlias Rule = "prop-alias"
)

// Design rules (VerifyDesign).
const (
	// RuleDesignCycle marks cyclic PREF predicate chains.
	RuleDesignCycle Rule = "design-cycle"
	// RuleDesignSeed marks PREF chains not rooted at a proper seed table
	// (dangling references, or a replicated/ill-formed seed).
	RuleDesignSeed Rule = "design-seed"
	// RuleDesignColumn marks schemes referencing unknown tables/columns.
	RuleDesignColumn Rule = "design-column"
	// RuleDesignType marks partitioning predicates whose column pairs are
	// not equi-join compatible (different value kinds).
	RuleDesignType Rule = "design-type"
	// RuleDesignShape marks structural config problems: bad predicate
	// arity, wrong Range bounds, non-positive partition counts.
	RuleDesignShape Rule = "design-shape"
)

// Violation is one invariant breach. It implements error.
type Violation struct {
	Rule   Rule
	Node   plan.Node // offending operator (nil for design violations)
	Table  string    // offending table (design violations)
	Detail string
}

func (v *Violation) Error() string {
	var loc string
	switch {
	case v.Node != nil:
		loc = " at " + v.Node.String()
	case v.Table != "":
		loc = " at table " + v.Table
	}
	return fmt.Sprintf("check[%s]%s: %s", v.Rule, loc, v.Detail)
}

// Violations is every breach found by one verification run. It implements
// error so Verify can return the full set at once.
type Violations []*Violation

func (vs Violations) Error() string {
	msgs := make([]string, len(vs))
	for i, v := range vs {
		msgs[i] = v.Error()
	}
	return fmt.Sprintf("%d invariant violation(s):\n  %s", len(vs), strings.Join(msgs, "\n  "))
}

// HasRule reports whether any violation carries the given rule.
func (vs Violations) HasRule(r Rule) bool {
	for _, v := range vs {
		if v.Rule == r {
			return true
		}
	}
	return false
}

// ViolationsOf extracts the violation set from an error returned by this
// package (possibly wrapped), or nil for foreign errors.
func ViolationsOf(err error) Violations {
	var vs Violations
	if errors.As(err, &vs) {
		return vs
	}
	var v *Violation
	if errors.As(err, &v) {
		return Violations{v}
	}
	return nil
}

// Verify statically checks a rewritten plan and the design it was
// rewritten against. It returns nil when every invariant holds, or a
// Violations error listing every breach found.
func Verify(rw *plan.Rewritten) error {
	if rw == nil || rw.Root == nil {
		return Violations{{Rule: RuleMalformed, Detail: "nil plan"}}
	}
	var vs Violations
	if rw.Catalog == nil || rw.Cfg == nil {
		return Violations{{Rule: RuleMalformed,
			Detail: "rewritten plan records no catalog/config (not produced by plan.Rewrite?)"}}
	}
	vs = append(vs, verifyDesign(rw.Catalog, rw.Cfg)...)

	c := newChecker(rw)
	root := c.visit(rw.Root)
	c.checkRoot(rw.Root, root)
	c.checkAliasing()
	vs = append(vs, c.vs...)
	if len(vs) == 0 {
		return nil
	}
	return vs
}
