package check_test

import (
	"strings"
	"testing"

	"pref/internal/catalog"
	"pref/internal/check"
	"pref/internal/partition"
	"pref/internal/plan"
	"pref/internal/value"
)

// miniSchema is a 4-table TPC-H-shaped catalog: lineitem (seed), orders
// (hash-equivalent PREF chain), customer (duplicate-carrying PREF), and a
// replicated nation.
func miniSchema(t *testing.T) *catalog.Schema {
	t.Helper()
	s := catalog.NewSchema("mini")
	s.MustAddTable(catalog.MustTable("lineitem", []catalog.Column{
		{Name: "l_orderkey", Kind: value.Int},
		{Name: "l_partkey", Kind: value.Int},
		{Name: "l_qty", Kind: value.Int},
	}, "l_orderkey", "l_partkey"))
	s.MustAddTable(catalog.MustTable("orders", []catalog.Column{
		{Name: "o_orderkey", Kind: value.Int},
		{Name: "o_custkey", Kind: value.Int},
		{Name: "o_total", Kind: value.Money},
	}, "o_orderkey"))
	s.MustAddTable(catalog.MustTable("customer", []catalog.Column{
		{Name: "c_custkey", Kind: value.Int},
		{Name: "c_name", Kind: value.Str},
		{Name: "c_nation", Kind: value.Int},
	}, "c_custkey"))
	s.MustAddTable(catalog.MustTable("nation", []catalog.Column{
		{Name: "n_nationkey", Kind: value.Int},
		{Name: "n_name", Kind: value.Str},
	}, "n_nationkey"))
	return s
}

// miniSD mirrors the paper's SD shape: orders rides a hash-equivalent
// chain on lineitem; customer is PREF on orders by custkey, which is not
// hash-equivalent and not redundancy-free, so customer carries live dup
// columns — the interesting case for the duplicate-freedom rules.
func miniSD(t *testing.T, sch *catalog.Schema) *partition.Config {
	t.Helper()
	cfg := partition.NewConfig(4)
	cfg.SetHash("lineitem", "l_orderkey")
	cfg.SetPref("orders", "lineitem", []string{"o_orderkey"}, []string{"l_orderkey"})
	cfg.SetPref("customer", "orders", []string{"c_custkey"}, []string{"o_custkey"})
	cfg.SetReplicated("nation")
	if err := cfg.Validate(sch); err != nil {
		t.Fatalf("fixture config invalid: %v", err)
	}
	return cfg
}

func mustRewrite(t *testing.T, root plan.Node, sch *catalog.Schema, cfg *partition.Config) *plan.Rewritten {
	t.Helper()
	rw, err := plan.Rewrite(root, sch, cfg, plan.Options{})
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	return rw
}

// findNode returns the first node (pre-order) matching pred.
func findNode(root plan.Node, pred func(plan.Node) bool) plan.Node {
	if pred(root) {
		return root
	}
	for _, c := range root.Children() {
		if n := findNode(c, pred); n != nil {
			return n
		}
	}
	return nil
}

// expectRule asserts that Verify fails and reports the given rule.
func expectRule(t *testing.T, rw *plan.Rewritten, rule check.Rule) {
	t.Helper()
	err := check.Verify(rw)
	if err == nil {
		t.Fatalf("Verify passed; want a %s violation", rule)
	}
	vs := check.ViolationsOf(err)
	if vs == nil {
		t.Fatalf("Verify returned a foreign error: %v", err)
	}
	if !vs.HasRule(rule) {
		t.Fatalf("Verify reported %v; want a %s violation", err, rule)
	}
}

// ---- positive cases: rewrite output always verifies ----

func TestVerifyPassesOnRewrittenPlans(t *testing.T) {
	sch := miniSchema(t)
	cfg := miniSD(t, sch)
	plans := map[string]plan.Node{
		"pref-join": plan.Join(
			plan.Scan("orders", "o"), plan.Scan("lineitem", "l"),
			plan.Inner, []string{"o.o_orderkey"}, []string{"l.l_orderkey"}),
		"dup-project": plan.ProjectCols(plan.Scan("customer", "c"), "c.c_custkey"),
		"misaligned-join": plan.Join(
			plan.Scan("customer", "c"), plan.Scan("lineitem", "l"),
			plan.Inner, []string{"c.c_custkey"}, []string{"l.l_partkey"}),
		"semi-join": plan.Join(
			plan.Scan("orders", "o"), plan.Scan("lineitem", "l"),
			plan.Semi, []string{"o.o_orderkey"}, []string{"l.l_orderkey"}),
		"replicated-join": plan.Join(
			plan.Scan("customer", "c"), plan.Scan("nation", "n"),
			plan.Inner, []string{"c.c_nation"}, []string{"n.n_nationkey"}),
		"grouped-agg": plan.Aggregate(
			plan.Scan("orders", "o"), []string{"o.o_orderkey"},
			plan.Sum(plan.Col("o.o_total"), "total")),
		"global-agg": plan.Aggregate(
			plan.Scan("customer", "c"), nil, plan.Count("n")),
		"topk": plan.TopK(plan.Scan("orders", "o"), 5,
			plan.OrderSpec{Col: "o.o_total", Desc: true}),
	}
	for name, p := range plans {
		t.Run(name, func(t *testing.T) {
			rw := mustRewrite(t, p, sch, cfg)
			if err := check.Verify(rw); err != nil {
				t.Fatalf("Verify failed on a legitimate rewritten plan:\n%v\nplan:\n%s", err, rw.Explain())
			}
		})
	}
}

func TestVerifyDesignPassesOnValidConfigs(t *testing.T) {
	sch := miniSchema(t)
	if err := check.VerifyDesign(sch, miniSD(t, sch)); err != nil {
		t.Fatalf("VerifyDesign failed on a valid config: %v", err)
	}
}

// ---- mutation 1: missing Repartition → locality ----

func TestVerifyRejectsMissingRepartition(t *testing.T) {
	sch := miniSchema(t)
	cfg := miniSD(t, sch)
	q := plan.Join(plan.Scan("customer", "c"), plan.Scan("lineitem", "l"),
		plan.Inner, []string{"c.c_custkey"}, []string{"l.l_partkey"})
	rw := mustRewrite(t, q, sch, cfg)

	jn := findNode(rw.Root, func(n plan.Node) bool { _, ok := n.(*plan.JoinNode); return ok }).(*plan.JoinNode)
	rep, ok := jn.Left.(*plan.RepartitionNode)
	if !ok {
		t.Fatalf("fixture drift: join left is %T, want Repartition\n%s", jn.Left, rw.Explain())
	}
	jn.Left = rep.Child // splice the shuffle out
	expectRule(t, rw, check.RuleLocality)
}

// ---- mutation 2: leaked DupCols → dup-leak ----

func TestVerifyRejectsLeakedDupCols(t *testing.T) {
	sch := miniSchema(t)
	cfg := miniSD(t, sch)
	q := plan.ProjectCols(plan.Scan("customer", "c"), "c.c_custkey")
	rw := mustRewrite(t, q, sch, cfg)

	pn := findNode(rw.Root, func(n plan.Node) bool { _, ok := n.(*plan.ProjectNode); return ok }).(*plan.ProjectNode)
	d, ok := pn.Child.(*plan.DistinctPrefNode)
	if !ok {
		t.Fatalf("fixture drift: project child is %T, want DistinctPref\n%s", pn.Child, rw.Explain())
	}
	pn.Child = d.Child // drop the duplicate elimination
	expectRule(t, rw, check.RuleDupLeak)
}

func TestVerifyRejectsUncoveredShipDedup(t *testing.T) {
	sch := miniSchema(t)
	cfg := miniSD(t, sch)
	// Group customer rows by nation: the rewrite must repartition and
	// dedup the PREF duplicates in transit.
	q := plan.Aggregate(plan.Scan("customer", "c"), []string{"c.c_nation"}, plan.Count("n"))
	rw := mustRewrite(t, q, sch, cfg)

	rep := findNode(rw.Root, func(n plan.Node) bool { _, ok := n.(*plan.RepartitionNode); return ok }).(*plan.RepartitionNode)
	if len(rep.DupCols) == 0 {
		t.Fatalf("fixture drift: repartition has no dedup columns\n%s", rw.Explain())
	}
	rep.DupCols = nil // ship the duplicates
	expectRule(t, rw, check.RuleDupLeak)
}

// ---- mutation 3: cyclic PREF chain → design-cycle ----

func TestVerifyDesignRejectsCycle(t *testing.T) {
	sch := miniSchema(t)
	cfg := partition.NewConfig(4)
	cfg.SetPref("orders", "customer", []string{"o_custkey"}, []string{"c_custkey"})
	cfg.SetPref("customer", "orders", []string{"c_custkey"}, []string{"o_custkey"})
	err := check.VerifyDesign(sch, cfg)
	if err == nil || !check.ViolationsOf(err).HasRule(check.RuleDesignCycle) {
		t.Fatalf("got %v; want a %s violation", err, check.RuleDesignCycle)
	}
}

// ---- mutation 4: wrong seed root → design-seed ----

func TestVerifyDesignRejectsReplicatedSeed(t *testing.T) {
	sch := miniSchema(t)
	cfg := partition.NewConfig(4)
	cfg.SetReplicated("customer")
	cfg.SetPref("orders", "customer", []string{"o_custkey"}, []string{"c_custkey"})
	err := check.VerifyDesign(sch, cfg)
	if err == nil || !check.ViolationsOf(err).HasRule(check.RuleDesignSeed) {
		t.Fatalf("got %v; want a %s violation", err, check.RuleDesignSeed)
	}
}

func TestVerifyDesignRejectsDanglingChain(t *testing.T) {
	sch := miniSchema(t)
	cfg := partition.NewConfig(4)
	cfg.SetPref("orders", "customer", []string{"o_custkey"}, []string{"c_custkey"})
	// customer has no scheme at all.
	err := check.VerifyDesign(sch, cfg)
	if err == nil || !check.ViolationsOf(err).HasRule(check.RuleDesignSeed) {
		t.Fatalf("got %v; want a %s violation", err, check.RuleDesignSeed)
	}
}

// ---- mutation 5: type-incompatible predicate → design-type ----

func TestVerifyDesignRejectsTypeMismatch(t *testing.T) {
	sch := miniSchema(t)
	cfg := partition.NewConfig(4)
	cfg.SetHash("customer", "c_custkey")
	// Pairs Str c_name with Int c... o_custkey: not equi-join compatible.
	cfg.SetPref("orders", "customer", []string{"o_custkey"}, []string{"c_name"})
	err := check.VerifyDesign(sch, cfg)
	if err == nil || !check.ViolationsOf(err).HasRule(check.RuleDesignType) {
		t.Fatalf("got %v; want a %s violation", err, check.RuleDesignType)
	}
}

func TestVerifyDesignRejectsUnknownColumn(t *testing.T) {
	sch := miniSchema(t)
	cfg := partition.NewConfig(4)
	cfg.SetHash("lineitem", "no_such_col")
	err := check.VerifyDesign(sch, cfg)
	if err == nil || !check.ViolationsOf(err).HasRule(check.RuleDesignColumn) {
		t.Fatalf("got %v; want a %s violation", err, check.RuleDesignColumn)
	}
}

func TestVerifyDesignRejectsBadShape(t *testing.T) {
	sch := miniSchema(t)
	cfg := partition.NewConfig(4)
	cfg.Set(&partition.TableScheme{Table: "lineitem", Method: partition.Range,
		Cols: []string{"l_orderkey"}, Bounds: []int64{10, 5, 20}})
	err := check.VerifyDesign(sch, cfg)
	if err == nil || !check.ViolationsOf(err).HasRule(check.RuleDesignShape) {
		t.Fatalf("got %v; want a %s violation", err, check.RuleDesignShape)
	}
}

// ---- mutation 6: stale recorded Prop → stale-prop ----

func TestVerifyRejectsStaleProp(t *testing.T) {
	sch := miniSchema(t)
	cfg := miniSD(t, sch)
	q := plan.Join(plan.Scan("orders", "o"), plan.Scan("lineitem", "l"),
		plan.Inner, []string{"o.o_orderkey"}, []string{"l.l_orderkey"})
	rw := mustRewrite(t, q, sch, cfg)

	jn := findNode(rw.Root, func(n plan.Node) bool { _, ok := n.(*plan.JoinNode); return ok })
	rw.Props[jn].HashCols = []string{"o.o_custkey"} // claim a placement the join does not have
	expectRule(t, rw, check.RuleStaleProp)
}

func TestVerifyRejectsStaleParts(t *testing.T) {
	sch := miniSchema(t)
	cfg := miniSD(t, sch)
	rw := mustRewrite(t, plan.ProjectCols(plan.Scan("orders", "o"), "o.o_orderkey"), sch, cfg)
	rw.Props[rw.Root].Parts++
	expectRule(t, rw, check.RuleStaleProp)
}

// ---- mutation 7: aliased Prop slices → prop-alias ----

func TestVerifyRejectsPropNodeAliasing(t *testing.T) {
	sch := miniSchema(t)
	cfg := miniSD(t, sch)
	q := plan.Join(plan.Scan("customer", "c"), plan.Scan("lineitem", "l"),
		plan.Inner, []string{"c.c_custkey"}, []string{"l.l_partkey"})
	rw := mustRewrite(t, q, sch, cfg)

	jn := findNode(rw.Root, func(n plan.Node) bool { _, ok := n.(*plan.JoinNode); return ok }).(*plan.JoinNode)
	// Same contents, shared backing array: the diff is silent but an
	// append through either alias would corrupt the other.
	rw.Props[jn].HashCols = jn.LeftCols
	expectRule(t, rw, check.RulePropAlias)
}

func TestVerifyRejectsPropPropAliasing(t *testing.T) {
	sch := miniSchema(t)
	cfg := miniSD(t, sch)
	q := plan.Join(plan.Scan("customer", "c"), plan.Scan("lineitem", "l"),
		plan.Inner, []string{"c.c_custkey"}, []string{"l.l_partkey"})
	rw := mustRewrite(t, q, sch, cfg)

	jn := findNode(rw.Root, func(n plan.Node) bool { _, ok := n.(*plan.JoinNode); return ok }).(*plan.JoinNode)
	rep := jn.Left.(*plan.RepartitionNode)
	rw.Props[jn].HashCols = rw.Props[rep].HashCols
	expectRule(t, rw, check.RulePropAlias)
}

// ---- mutation 8: flipped OneCopy → malformed ----

func TestVerifyRejectsFlippedOneCopy(t *testing.T) {
	sch := miniSchema(t)
	cfg := miniSD(t, sch)
	q := plan.Join(plan.Scan("customer", "c"), plan.Scan("lineitem", "l"),
		plan.Inner, []string{"c.c_custkey"}, []string{"l.l_partkey"})
	rw := mustRewrite(t, q, sch, cfg)

	rep := findNode(rw.Root, func(n plan.Node) bool { _, ok := n.(*plan.RepartitionNode); return ok }).(*plan.RepartitionNode)
	rep.OneCopy = !rep.OneCopy // read one copy of a non-replicated input: drops rows
	expectRule(t, rw, check.RuleMalformed)
}

// ---- error plumbing ----

func TestViolationErrorRendering(t *testing.T) {
	sch := miniSchema(t)
	cfg := partition.NewConfig(4)
	cfg.SetPref("orders", "customer", []string{"o_custkey"}, []string{"c_custkey"})
	cfg.SetPref("customer", "orders", []string{"c_custkey"}, []string{"o_custkey"})
	err := check.VerifyDesign(sch, cfg)
	if err == nil {
		t.Fatal("want error")
	}
	msg := err.Error()
	if !strings.Contains(msg, string(check.RuleDesignCycle)) || !strings.Contains(msg, "violation") {
		t.Fatalf("unhelpful error rendering: %q", msg)
	}
}

func TestVerifyNilPlan(t *testing.T) {
	if err := check.Verify(nil); err == nil {
		t.Fatal("Verify(nil) must fail")
	}
	if err := check.Verify(&plan.Rewritten{}); err == nil {
		t.Fatal("Verify of empty Rewritten must fail")
	}
}
