package check_test

import (
	"fmt"
	"math/rand"
	"testing"

	"pref/internal/catalog"
	"pref/internal/check"
	"pref/internal/partition"
	"pref/internal/plan"
	"pref/internal/value"
)

// The property tests push randomly generated schemas, partitioning
// configurations, and SPJA queries through the real rewrite and assert
// the two sides of the checker's contract: every rewrite-produced plan
// verifies cleanly, and a corrupted recorded property is detected.

// genSchema builds a random 2–5 table catalog. Columns are Int so any
// column pair is equi-join compatible; the first column is the PK.
func genSchema(rng *rand.Rand) *catalog.Schema {
	s := catalog.NewSchema("fuzz")
	nt := 2 + rng.Intn(4)
	for ti := 0; ti < nt; ti++ {
		nc := 2 + rng.Intn(4)
		cols := make([]catalog.Column, nc)
		for ci := 0; ci < nc; ci++ {
			cols[ci] = catalog.Column{Name: fmt.Sprintf("t%dc%d", ti, ci), Kind: value.Int}
		}
		s.MustAddTable(catalog.MustTable(fmt.Sprintf("t%d", ti), cols, cols[0].Name))
	}
	return s
}

// genConfig assigns each table a random scheme. PREF schemes only
// reference lower-numbered, non-replicated tables, so chains are acyclic
// by construction and always bottom out at a properly partitioned seed
// (VerifyDesign rejects replicated seeds, which Config.Validate tolerates).
func genConfig(rng *rand.Rand, s *catalog.Schema) *partition.Config {
	cfg := partition.NewConfig(2 + rng.Intn(4))
	names := s.TableNames()
	var seedable []string
	for _, name := range names {
		t := s.Table(name)
		switch r := rng.Intn(4); {
		case r == 0 && len(seedable) > 0:
			ref := s.Table(seedable[rng.Intn(len(seedable))])
			// Reference a random column pair; referencing the PK sometimes
			// makes the chain hash-equivalent or redundancy-free, so all
			// three dup regimes are exercised.
			rc := t.Columns[rng.Intn(t.NumCols())].Name
			sc := ref.Columns[rng.Intn(ref.NumCols())].Name
			cfg.SetPref(name, ref.Name, []string{rc}, []string{sc})
			seedable = append(seedable, name)
		case r == 1:
			cfg.SetReplicated(name)
		default:
			cfg.SetHash(name, t.Columns[rng.Intn(t.NumCols())].Name)
			seedable = append(seedable, name)
		}
	}
	return cfg
}

// genQuery builds a random left-deep SPJA plan over 1–3 distinct tables,
// optionally topped by a filter, an aggregate, or a top-k. It returns the
// plan and the qualified output columns of the join tree.
func genQuery(rng *rand.Rand, s *catalog.Schema) plan.Node {
	names := s.TableNames()
	nscan := 1 + rng.Intn(3)
	if nscan > len(names) {
		nscan = len(names)
	}
	perm := rng.Perm(len(names))[:nscan]

	alias := func(i int) string { return fmt.Sprintf("a%d", i) }
	qcols := func(i int) []string {
		t := s.Table(names[perm[i]])
		out := make([]string, t.NumCols())
		for ci, col := range t.Columns {
			out[ci] = plan.Qualify(alias(i), col.Name)
		}
		return out
	}

	var root plan.Node = plan.Scan(names[perm[0]], alias(0))
	cols := qcols(0)
	for i := 1; i < nscan; i++ {
		right := plan.Scan(names[perm[i]], alias(i))
		rcols := qcols(i)
		jt := plan.Inner
		switch rng.Intn(4) {
		case 1:
			jt = plan.Semi
		case 2:
			jt = plan.Anti
		case 3:
			jt = plan.LeftOuter
		}
		lc := cols[rng.Intn(len(cols))]
		rc := rcols[rng.Intn(len(rcols))]
		root = plan.Join(root, right, jt, []string{lc}, []string{rc})
		if jt == plan.Semi || jt == plan.Anti {
			continue // right columns do not survive
		}
		cols = append(append([]string(nil), cols...), rcols...)
	}

	if rng.Intn(2) == 0 {
		root = plan.Filter(root, plan.Gt(plan.Col(cols[rng.Intn(len(cols))]), plan.Lit(int64(rng.Intn(50)))))
	}
	switch rng.Intn(4) {
	case 0:
		g := cols[rng.Intn(len(cols))]
		root = plan.Aggregate(root, []string{g}, plan.Count("cnt"),
			plan.Sum(plan.Col(cols[rng.Intn(len(cols))]), "s"))
	case 1:
		root = plan.Aggregate(root, nil, plan.Count("cnt"))
	case 2:
		root = plan.TopK(root, 1+rng.Intn(10), plan.OrderSpec{Col: cols[rng.Intn(len(cols))]})
	}
	return root
}

// TestFuzzRewrittenPlansVerify is the soundness property: whatever the
// rewrite produces over a valid random design, Verify accepts.
func TestFuzzRewrittenPlansVerify(t *testing.T) {
	const rounds = 400
	verified := 0
	for seed := int64(0); seed < rounds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := genSchema(rng)
		cfg := genConfig(rng, s)
		if cfg.Validate(s) != nil {
			continue
		}
		if err := check.VerifyDesign(s, cfg); err != nil {
			t.Fatalf("seed %d: VerifyDesign rejects a config Validate accepts:\n%s\n%v", seed, cfg, err)
		}
		q := genQuery(rng, s)
		rw, err := plan.Rewrite(q, s, cfg, plan.Options{})
		if err != nil {
			t.Fatalf("seed %d: rewrite failed on generated query: %v\n%s", seed, err, plan.Format(q))
		}
		if err := check.Verify(rw); err != nil {
			t.Fatalf("seed %d: Verify rejects a rewrite-produced plan:\n%v\nconfig:\n%splan:\n%s",
				seed, err, cfg, rw.Explain())
		}
		verified++
	}
	if verified < rounds/2 {
		t.Fatalf("only %d/%d seeds produced a verifiable scenario; generator is degenerate", verified, rounds)
	}
}

// TestFuzzCorruptedPartsDetected is the completeness spot-check: flipping
// the recorded partition count of any reachable operator is always caught.
func TestFuzzCorruptedPartsDetected(t *testing.T) {
	const rounds = 150
	checked := 0
	for seed := int64(0); seed < rounds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := genSchema(rng)
		cfg := genConfig(rng, s)
		if cfg.Validate(s) != nil {
			continue
		}
		q := genQuery(rng, s)
		rw, err := plan.Rewrite(q, s, cfg, plan.Options{})
		if err != nil || check.Verify(rw) != nil {
			continue
		}
		// Pick a reachable node and corrupt its recorded Parts.
		var nodes []plan.Node
		var walk func(plan.Node)
		seen := map[plan.Node]bool{}
		walk = func(n plan.Node) {
			if seen[n] {
				return
			}
			seen[n] = true
			nodes = append(nodes, n)
			for _, c := range n.Children() {
				walk(c)
			}
		}
		walk(rw.Root)
		victim := nodes[rng.Intn(len(nodes))]
		rw.Props[victim].Parts += 7
		err = check.Verify(rw)
		if err == nil || !check.ViolationsOf(err).HasRule(check.RuleStaleProp) {
			t.Fatalf("seed %d: corrupted Parts on %s not detected (got %v)\nplan:\n%s",
				seed, victim, err, rw.Explain())
		}
		checked++
	}
	if checked < rounds/3 {
		t.Fatalf("only %d/%d seeds reached the corruption check; generator is degenerate", checked, rounds)
	}
}
