package check_test

import (
	"math/rand"
	"testing"

	"pref/internal/check"
	"pref/internal/plan"
)

// The property tests push randomly generated schemas, partitioning
// configurations, and SPJA queries (gen.go's exported generators, shared
// with the engine's trace-invariant tests) through the real rewrite and
// assert the two sides of the checker's contract: every rewrite-produced
// plan verifies cleanly, and a corrupted recorded property is detected.

// TestFuzzRewrittenPlansVerify is the soundness property: whatever the
// rewrite produces over a valid random design, Verify accepts.
func TestFuzzRewrittenPlansVerify(t *testing.T) {
	const rounds = 400
	verified := 0
	for seed := int64(0); seed < rounds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := check.GenSchema(rng)
		cfg := check.GenConfig(rng, s)
		if cfg.Validate(s) != nil {
			continue
		}
		if err := check.VerifyDesign(s, cfg); err != nil {
			t.Fatalf("seed %d: VerifyDesign rejects a config Validate accepts:\n%s\n%v", seed, cfg, err)
		}
		q := check.GenQuery(rng, s)
		rw, err := plan.Rewrite(q, s, cfg, plan.Options{})
		if err != nil {
			t.Fatalf("seed %d: rewrite failed on generated query: %v\n%s", seed, err, plan.Format(q))
		}
		if err := check.Verify(rw); err != nil {
			t.Fatalf("seed %d: Verify rejects a rewrite-produced plan:\n%v\nconfig:\n%splan:\n%s",
				seed, err, cfg, rw.Explain())
		}
		verified++
	}
	if verified < rounds/2 {
		t.Fatalf("only %d/%d seeds produced a verifiable scenario; generator is degenerate", verified, rounds)
	}
}

// TestFuzzCorruptedPartsDetected is the completeness spot-check: flipping
// the recorded partition count of any reachable operator is always caught.
func TestFuzzCorruptedPartsDetected(t *testing.T) {
	const rounds = 150
	checked := 0
	for seed := int64(0); seed < rounds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := check.GenSchema(rng)
		cfg := check.GenConfig(rng, s)
		if cfg.Validate(s) != nil {
			continue
		}
		q := check.GenQuery(rng, s)
		rw, err := plan.Rewrite(q, s, cfg, plan.Options{})
		if err != nil || check.Verify(rw) != nil {
			continue
		}
		// Pick a reachable node and corrupt its recorded Parts.
		var nodes []plan.Node
		var walk func(plan.Node)
		seen := map[plan.Node]bool{}
		walk = func(n plan.Node) {
			if seen[n] {
				return
			}
			seen[n] = true
			nodes = append(nodes, n)
			for _, c := range n.Children() {
				walk(c)
			}
		}
		walk(rw.Root)
		victim := nodes[rng.Intn(len(nodes))]
		rw.Props[victim].Parts += 7
		err = check.Verify(rw)
		if err == nil || !check.ViolationsOf(err).HasRule(check.RuleStaleProp) {
			t.Fatalf("seed %d: corrupted Parts on %s not detected (got %v)\nplan:\n%s",
				seed, victim, err, rw.Explain())
		}
		checked++
	}
	if checked < rounds/3 {
		t.Fatalf("only %d/%d seeds reached the corruption check; generator is degenerate", checked, rounds)
	}
}
