package check

import (
	"pref/internal/partition"
	"pref/internal/plan"
)

// deriveJoin re-proves one of the Section 2.2 co-location cases for a
// physical hash join, in the rewriter's order of preference, and derives
// the output properties that case dictates. A join matching no case is a
// locality violation: its inputs are not provably co-partitioned on the
// join keys and no Repartition/Broadcast precedes it.
func (c *checker) deriveJoin(n *plan.JoinNode) *info {
	li := c.visit(n.Left)
	ri := c.visit(n.Right)
	lp, rp := li.prop, ri.prop
	ls, rs := li.sch, ri.sch

	if len(n.LeftCols) != len(n.RightCols) {
		c.report(RuleMalformed, n, "join column lists differ in length (%d vs %d)", len(n.LeftCols), len(n.RightCols))
	}
	for _, col := range n.LeftCols {
		if ls.Index(col) < 0 {
			c.report(RuleMalformed, n, "join column %q not in left schema %v", col, ls.Names())
		}
	}
	for _, col := range n.RightCols {
		if rs.Index(col) < 0 {
			c.report(RuleMalformed, n, "join column %q not in right schema %v", col, rs.Names())
		}
	}
	outSchema := ls.Concat(rs)
	semiLike := n.Type == plan.Semi || n.Type == plan.Anti
	if semiLike {
		outSchema = ls
	}
	if n.Residual != nil {
		if _, err := n.Residual.Bind(ls.Concat(rs)); err != nil {
			c.report(RuleMalformed, n, "residual predicate does not bind: %v", err)
		}
	}
	if lp.Parts != rp.Parts {
		c.report(RuleMalformed, n, "inputs disagree on partition count (%d vs %d)", lp.Parts, rp.Parts)
	}

	// Cross/theta join: only legal against a replicated build side, with a
	// duplicate-free probe side (pair copies would multiply otherwise).
	if len(n.LeftCols) == 0 {
		if !rp.Repl {
			c.report(RuleLocality, n,
				"cross/theta join needs a replicated (broadcast) right input, got method %s", rp.Method())
		}
		if lp.Dup() {
			c.report(RuleDupLeak, n, "cross/theta join probe side has live dup columns %v", lp.DupCols)
		}
		if rp.Dup() {
			c.report(RuleDupLeak, n, "cross/theta join build side has live dup columns %v", rp.DupCols)
		}
		np := &plan.Prop{
			Parts:    lp.Parts,
			HashCols: append([]string(nil), lp.HashCols...),
			Placed:   lp.Placed,
			Repl:     lp.Repl,
		}
		return &info{prop: np, sch: outSchema, contentRepl: np.Repl}
	}

	// Replicated inputs join locally with anything — except a replicated
	// probe side against a partitioned build side for join types whose
	// match-absence test must be locally decidable: each node would see
	// only a subset of potential partners, so a "no match here" verdict is
	// not a "no match anywhere" verdict. The rewriter re-partitions both
	// sides in that situation; seeing it in a physical plan means the
	// guard was bypassed.
	if lp.Repl || rp.Repl {
		if lp.Repl && !rp.Repl && n.Type != plan.Inner {
			c.report(RuleLocality, n,
				"%v join with replicated probe side over partitioned build side is not locally decidable", n.Type)
		}
		np := &plan.Prop{Parts: lp.Parts, Equiv: c.joinEquiv(n, lp, rp)}
		switch {
		case lp.Repl && rp.Repl:
			np.Repl = true
			np.Placed = map[string]plan.PlacedEntry{}
		case lp.Repl:
			np.HashCols = append([]string(nil), rp.HashCols...)
			np.Placed = rp.Placed
			np.DupCols = append([]string(nil), rp.DupCols...)
		default:
			np.HashCols = append([]string(nil), lp.HashCols...)
			np.Placed = lp.Placed
			np.DupCols = append([]string(nil), lp.DupCols...)
		}
		if semiLike {
			np.Placed = lp.Placed
			np.DupCols = append([]string(nil), lp.DupCols...)
			np.HashCols = append([]string(nil), lp.HashCols...)
			np.Repl = lp.Repl
			np.Equiv = lp.Equiv
		}
		return &info{prop: np, sch: outSchema, contentRepl: np.Repl}
	}

	// Case (1): both sides hash-partitioned on keys the join predicate
	// implies equal — all partners of a key share a partition, so every
	// join type is safe.
	if lp.HashCols != nil && rp.HashCols != nil && lp.Parts == rp.Parts &&
		hashAligned(lp, rp, n.LeftCols, n.RightCols) {
		np := &plan.Prop{
			Parts:    lp.Parts,
			HashCols: append([]string(nil), lp.HashCols...),
			Placed:   unionPlaced(lp.Placed, rp.Placed),
			DupCols:  append(append([]string(nil), lp.DupCols...), rp.DupCols...),
			Equiv:    c.joinEquiv(n, lp, rp),
		}
		if semiLike {
			np.Placed = lp.Placed
			np.DupCols = append([]string(nil), lp.DupCols...)
			np.Equiv = lp.Equiv
		}
		return &info{prop: np, sch: outSchema}
	}

	// Cases (2)/(3): one side carries a PREF scheme whose partitioning
	// predicate is this join predicate and whose referenced table is placed
	// intact on the other side (Definition 1 then guarantees every partner
	// is local).
	if refd, ok := c.prefMatch(lp, n.LeftCols, rp, n.RightCols); ok && c.prefJoinSafe(n, refd) {
		refdProp := rp
		if refd == "left" {
			refdProp = lp
		}
		np := &plan.Prop{
			Parts:    lp.Parts,
			Placed:   unionPlaced(lp.Placed, rp.Placed),
			DupCols:  append([]string(nil), refdProp.DupCols...),
			HashCols: append([]string(nil), refdProp.HashCols...),
			Equiv:    c.joinEquiv(n, lp, rp),
		}
		if semiLike {
			np.Placed = lp.Placed
			np.DupCols = append([]string(nil), lp.DupCols...)
			np.Equiv = lp.Equiv
		}
		return &info{prop: np, sch: outSchema}
	}

	// No co-location case applies and neither side was shipped: the join
	// would miss partners that live on other partitions.
	c.report(RuleLocality, n,
		"join inputs not provably co-partitioned on the join keys (left %s hash=%v, right %s hash=%v) and no Repartition/Broadcast precedes the join",
		lp.Method(), lp.HashCols, rp.Method(), rp.HashCols)
	np := &plan.Prop{
		Parts:    lp.Parts,
		HashCols: append([]string(nil), n.LeftCols...),
		Placed:   unionPlaced(lp.Placed, rp.Placed),
		Equiv:    c.joinEquiv(n, lp, rp),
	}
	return &info{prop: np, sch: outSchema}
}

// joinEquiv mirrors the rewriter: both sides' equivalence classes survive,
// and an inner join adds the predicate's equalities (outer joins do not —
// the right side may be null-extended; semi/anti output no right columns).
func (c *checker) joinEquiv(n *plan.JoinNode, lp, rp *plan.Prop) [][]string {
	out := plan.UnionEquiv(lp.Equiv, rp.Equiv)
	if n.Type == plan.Inner {
		for i := range n.LeftCols {
			out = plan.AddEquiv(out, n.LeftCols[i], n.RightCols[i])
		}
	}
	return out
}

// hashAligned reports whether two hash placements provably co-locate all
// rows with equal join keys: every positional hash-column pair must be
// implied equal by some join conjunct, modulo each side's equivalences.
func hashAligned(lp, rp *plan.Prop, leftCols, rightCols []string) bool {
	if len(lp.HashCols) != len(rp.HashCols) || len(leftCols) != len(rightCols) {
		return false
	}
	used := make([]bool, len(leftCols))
	for i := range lp.HashCols {
		found := false
		for j := range leftCols {
			if used[j] {
				continue
			}
			if lp.EquivSame(lp.HashCols[i], leftCols[j]) && rp.EquivSame(rp.HashCols[i], rightCols[j]) {
				used[j] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// prefJoinSafe guards the PREF co-location cases for join types whose
// match-absence test must be locally decidable (Semi/Anti/LeftOuter):
// safe when the output side is the referenced input, or against a bare
// referenced-table scan with no residual predicate.
func (c *checker) prefJoinSafe(n *plan.JoinNode, refd string) bool {
	if n.Type == plan.Inner {
		return true
	}
	if refd == "left" {
		return true
	}
	_, bare := n.Right.(*plan.ScanNode)
	return bare && n.Residual == nil
}

// prefMatch reports which side is the referenced input ("left"/"right")
// when some placed PREF scheme's partitioning predicate equals the join
// predicate and its referenced table is placed intact on the other side.
func (c *checker) prefMatch(lp *plan.Prop, leftCols []string, rp *plan.Prop, rightCols []string) (string, bool) {
	if lp.Parts != rp.Parts {
		return "", false
	}
	if c.matchOneDirection(lp, leftCols, rp, rightCols) {
		return "right", true
	}
	if c.matchOneDirection(rp, rightCols, lp, leftCols) {
		return "left", true
	}
	return "", false
}

// matchOneDirection checks whether some alias on the referencing side has
// a PREF scheme whose predicate equals the join predicate — modulo column
// equivalences established upstream — and whose referenced table is placed
// intact (at its configured scheme) on the referenced side.
func (c *checker) matchOneDirection(ringProp *plan.Prop, ringCols []string, refdProp *plan.Prop, refdCols []string) bool {
	for alias, entry := range ringProp.Placed {
		sch := entry.Scheme
		if sch == nil || sch.Method != partition.Pref {
			continue
		}
		for refdAlias, refdEntry := range refdProp.Placed {
			if refdEntry.Table != sch.RefTable {
				continue
			}
			if refdEntry.Scheme != c.cfg.Scheme(sch.RefTable) {
				continue
			}
			if pairsMatchEquiv(
				ringProp, ringCols, refdProp, refdCols,
				qualify(alias, sch.Pred.ReferencingCols),
				qualify(refdAlias, sch.Pred.ReferencedCols),
			) {
				return true
			}
		}
	}
	return false
}

// pairsMatchEquiv reports whether the join pairing (joinA[j], joinB[j])
// covers every wanted pair (wantA[i], wantB[i]) up to per-side column
// equivalence.
func pairsMatchEquiv(aProp *plan.Prop, joinA []string, bProp *plan.Prop, joinB []string, wantA, wantB []string) bool {
	if len(joinA) != len(wantA) || len(joinA) != len(joinB) {
		return false
	}
	used := make([]bool, len(joinA))
	for i := range wantA {
		found := false
		for j := range joinA {
			if used[j] {
				continue
			}
			if aProp.EquivSame(joinA[j], wantA[i]) && bProp.EquivSame(joinB[j], wantB[i]) {
				used[j] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func unionPlaced(a, b map[string]plan.PlacedEntry) map[string]plan.PlacedEntry {
	out := make(map[string]plan.PlacedEntry, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}
