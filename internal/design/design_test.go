package design

import (
	"math"
	"testing"

	"pref/internal/catalog"
	"pref/internal/graph"
	"pref/internal/partition"
	"pref/internal/table"
	"pref/internal/value"
)

// miniTPCH builds a scaled-down TPC-H-like database matching the
// simplified schema of Figure 1/4: NATION(25), SUPPLIER(100),
// CUSTOMER(1500), ORDERS(15000), LINEITEM(60000), with uniform fks.
func miniTPCH(t testing.TB) *table.Database {
	t.Helper()
	s := catalog.NewSchema("mini-tpch")
	s.MustAddTable(catalog.MustTable("nation",
		[]catalog.Column{{Name: "nationkey", Kind: value.Int}}, "nationkey"))
	s.MustAddTable(catalog.MustTable("supplier",
		[]catalog.Column{{Name: "suppkey", Kind: value.Int}, {Name: "nationkey", Kind: value.Int}}, "suppkey"))
	s.MustAddTable(catalog.MustTable("customer",
		[]catalog.Column{{Name: "custkey", Kind: value.Int}, {Name: "nationkey", Kind: value.Int}}, "custkey"))
	s.MustAddTable(catalog.MustTable("orders",
		[]catalog.Column{{Name: "orderkey", Kind: value.Int}, {Name: "custkey", Kind: value.Int}}, "orderkey"))
	s.MustAddTable(catalog.MustTable("lineitem",
		[]catalog.Column{{Name: "linekey", Kind: value.Int}, {Name: "orderkey", Kind: value.Int}, {Name: "suppkey", Kind: value.Int}}, "linekey"))
	s.MustAddFK(catalog.ForeignKey{Name: "fk_s_n", FromTable: "supplier", FromCols: []string{"nationkey"}, ToTable: "nation", ToCols: []string{"nationkey"}, ToIsUnique: true})
	s.MustAddFK(catalog.ForeignKey{Name: "fk_c_n", FromTable: "customer", FromCols: []string{"nationkey"}, ToTable: "nation", ToCols: []string{"nationkey"}, ToIsUnique: true})
	s.MustAddFK(catalog.ForeignKey{Name: "fk_o_c", FromTable: "orders", FromCols: []string{"custkey"}, ToTable: "customer", ToCols: []string{"custkey"}, ToIsUnique: true})
	s.MustAddFK(catalog.ForeignKey{Name: "fk_l_o", FromTable: "lineitem", FromCols: []string{"orderkey"}, ToTable: "orders", ToCols: []string{"orderkey"}, ToIsUnique: true})
	s.MustAddFK(catalog.ForeignKey{Name: "fk_l_s", FromTable: "lineitem", FromCols: []string{"suppkey"}, ToTable: "supplier", ToCols: []string{"suppkey"}, ToIsUnique: true})

	db := table.NewDatabase(s)
	for i := int64(0); i < 25; i++ {
		db.Tables["nation"].MustAppend(value.Tuple{i})
	}
	for i := int64(0); i < 100; i++ {
		db.Tables["supplier"].MustAppend(value.Tuple{i, i % 25})
	}
	for i := int64(0); i < 1500; i++ {
		db.Tables["customer"].MustAppend(value.Tuple{i, i % 25})
	}
	for i := int64(0); i < 15000; i++ {
		// Salted hash: deriving custkey from the unsalted placement hash
		// would correlate a customer's orders into one partition
		// (10 | 1500), which no real data distribution does.
		db.Tables["orders"].MustAppend(value.Tuple{i, int64(value.MakeKey1(i*2654435761+97).Hash() % 1500)})
	}
	for i := int64(0); i < 60000; i++ {
		// suppkey decorrelated from orderkey by hashing — with a modular
		// assignment all lines of an order would share one supplier
		// (15000 ≡ 0 mod 100), a correlation dbgen data does not have.
		db.Tables["lineitem"].MustAppend(value.Tuple{
			i, i % 15000, int64(value.MakeKey1(i+7).Hash() % 100)})
	}
	return db
}

func TestSchemaGraphWeights(t *testing.T) {
	db := miniTPCH(t)
	g := SchemaGraph(db.Schema, SizesOf(db))
	if g.NumNodes() != 5 || g.NumEdges() != 5 {
		t.Fatalf("graph = %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	// Weight = size of the smaller table.
	for _, e := range g.Edges() {
		switch e.ID() {
		case graph.Edge{A: "lineitem", B: "orders", ACols: []string{"orderkey"}, BCols: []string{"orderkey"}}.ID():
			if e.Weight != 15000 {
				t.Errorf("L-O weight = %d", e.Weight)
			}
		case graph.Edge{A: "customer", B: "orders", ACols: []string{"custkey"}, BCols: []string{"custkey"}}.ID():
			if e.Weight != 1500 {
				t.Errorf("C-O weight = %d", e.Weight)
			}
		}
	}
}

// Figure 4's schema: the enumeration of Listing 1 finds the minimum-
// redundancy seed. With NATION present, the miniature TPC-H hierarchy is
// almost entirely coverable by factor-1 (unique-key) chains: seeding at
// NATION makes CUSTOMER/ORDERS/LINEITEM redundancy-free, leaving only
// SUPPLIER (referenced from LINEITEM's non-unique suppkey) duplicated.
// (Figure 4 itself shows a LINEITEM-seeded configuration but calls it "one
// potential" configuration; the paper's measured SD designs run without
// small tables and with PART/PARTSUPP, exercised in the tpch package.)
func TestPaperFigure4SchemaDriven(t *testing.T) {
	db := miniTPCH(t)
	d, err := SchemaDriven(db, SDOptions{Parts: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Seeds) != 1 || d.Seeds[0] != "nation" {
		t.Fatalf("seeds = %v, want [nation] (zero-redundancy hierarchy root)", d.Seeds)
	}
	seed := d.Config.Scheme("nation")
	if seed.Method != partition.Hash || len(seed.Cols) != 1 || seed.Cols[0] != "nationkey" {
		t.Fatalf("seed scheme = %v, want HASH(nationkey)", seed)
	}
	// The PREF chain follows the MAST away from the seed.
	for tbl, ref := range map[string]string{"customer": "nation", "orders": "customer", "lineitem": "orders", "supplier": "lineitem"} {
		sc := d.Config.Scheme(tbl)
		if sc.Method != partition.Pref || sc.RefTable != ref {
			t.Errorf("%s scheme = %v, want PREF on %s", tbl, sc, ref)
		}
	}
	// Full locality: the MAST covers all but one weight-25 edge.
	wantDL := float64(15000+1500+100+25) / float64(15000+1500+100+25+25)
	if math.Abs(d.DL-wantDL) > 1e-9 {
		t.Fatalf("DL = %v, want %v", d.DL, wantDL)
	}
	// Estimated DR is small: only SUPPLIER (100 rows, ~×10) duplicates.
	if dr := d.Est.DR(); dr < 0 || dr > 0.05 {
		t.Fatalf("estimated DR = %v, want small positive", dr)
	}
	// Listing 1 self-consistency: no other single seed beats the choice.
	sizes := SizesOf(db)
	hp := NewHistProvider(db, 1, 0)
	for _, comp := range d.Graph.Components() {
		mast := d.Graph.Subgraph(comp).MaximumSpanningTree()
		for _, seedTbl := range mast.Nodes() {
			cfg, _, err := BuildPC(mast, []string{seedTbl}, db.Schema, 10)
			if err != nil {
				t.Fatal(err)
			}
			est, err := EstimateConfig(cfg, sizes, hp)
			if err != nil {
				t.Fatal(err)
			}
			if est.Total < d.Est.Total-1e-6 {
				t.Errorf("seed %s (est %v) beats chosen design (est %v)", seedTbl, est.Total, d.Est.Total)
			}
		}
	}
}

func TestSDEstimateMatchesActual(t *testing.T) {
	// On uniform data the Appendix A estimate should be close to the
	// actual redundancy produced by partitioning.
	db := miniTPCH(t)
	d, err := SchemaDriven(db, SDOptions{Parts: 10})
	if err != nil {
		t.Fatal(err)
	}
	pdb, err := partition.Apply(db, d.Config)
	if err != nil {
		t.Fatal(err)
	}
	actual := pdb.DataRedundancy()
	estimated := d.Est.DR()
	if actual < 0 {
		t.Fatalf("actual DR = %v", actual)
	}
	relErr := math.Abs(estimated-actual) / (actual + 1)
	if relErr > 0.15 {
		t.Fatalf("estimate %.4f vs actual %.4f: relative error %.3f too big", estimated, actual, relErr)
	}
}

func TestSDHashSeedEdgeIsRedundancyFree(t *testing.T) {
	// The seed hashes on the L–O join key, so ORDERS must come out of
	// partitioning with (near) zero duplicates.
	db := miniTPCH(t)
	d, err := SchemaDriven(db, SDOptions{Parts: 10})
	if err != nil {
		t.Fatal(err)
	}
	pdb, err := partition.Apply(db, d.Config)
	if err != nil {
		t.Fatal(err)
	}
	if dup := pdb.Tables["orders"].DuplicateRows(); dup != 0 {
		t.Fatalf("orders duplicates = %d, want 0 (seed hashed on orderkey)", dup)
	}
}

func TestSDNoRedundancyConstraint(t *testing.T) {
	db := miniTPCH(t)
	all := db.Schema.TableNames()
	d, err := SchemaDriven(db, SDOptions{Parts: 10, NoRedundancy: all})
	if err != nil {
		t.Fatal(err)
	}
	// The configuration must produce zero redundancy in reality.
	pdb, err := partition.Apply(db, d.Config)
	if err != nil {
		t.Fatal(err)
	}
	if dr := pdb.DataRedundancy(); dr > 1e-9 {
		t.Fatalf("actual DR = %v, want 0 under all-table constraint", dr)
	}
	// Locality must drop below 1 (edges were cut) but stay positive:
	// outgoing-fk chains (L→O→C, L→S, …) are still usable.
	if d.DL <= 0 || d.DL >= 1 {
		t.Fatalf("constrained DL = %v, want in (0,1)", d.DL)
	}
	if len(d.Seeds) < 2 {
		t.Fatalf("constrained design should need ≥ 2 seeds, got %v", d.Seeds)
	}
}

func TestSDPartialConstraint(t *testing.T) {
	db := miniTPCH(t)
	d, err := SchemaDriven(db, SDOptions{Parts: 10, NoRedundancy: []string{"lineitem", "orders"}})
	if err != nil {
		t.Fatal(err)
	}
	pdb, err := partition.Apply(db, d.Config)
	if err != nil {
		t.Fatal(err)
	}
	for _, tbl := range []string{"lineitem", "orders"} {
		if dup := pdb.Tables[tbl].DuplicateRows(); dup != 0 {
			t.Fatalf("%s duplicates = %d, want 0", tbl, dup)
		}
	}
}

func TestSDRejectsBadOptions(t *testing.T) {
	db := miniTPCH(t)
	if _, err := SchemaDriven(db, SDOptions{Parts: 0}); err == nil {
		t.Fatal("Parts=0 must error")
	}
}

func TestSDDisconnectedSchema(t *testing.T) {
	// Two unrelated tables: each becomes its own hash-partitioned seed.
	s := catalog.NewSchema("d")
	s.MustAddTable(catalog.MustTable("a", []catalog.Column{{Name: "k", Kind: value.Int}}, "k"))
	s.MustAddTable(catalog.MustTable("b", []catalog.Column{{Name: "k", Kind: value.Int}}, "k"))
	db := table.NewDatabase(s)
	for i := int64(0); i < 10; i++ {
		db.Tables["a"].MustAppend(value.Tuple{i})
		db.Tables["b"].MustAppend(value.Tuple{i})
	}
	d, err := SchemaDriven(db, SDOptions{Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Seeds) != 2 {
		t.Fatalf("seeds = %v", d.Seeds)
	}
	if d.DL != 1 {
		t.Fatalf("edgeless graph DL = %v, want 1", d.DL)
	}
	for _, tbl := range []string{"a", "b"} {
		if sc := d.Config.Scheme(tbl); sc.Method != partition.Hash || sc.Cols[0] != "k" {
			t.Fatalf("%s scheme = %v, want HASH(k) via pk fallback", tbl, sc)
		}
	}
}

// ---- Workload-driven ----

func wdSizes(db *table.Database) Sizes { return SizesOf(db) }

// Figure 5, adapted: Q1 joins C⋈O⋈L plus C⋈N; Q2 joins O⋈L (contained in
// Q1's MAST — phase-1 merge); Q3 joins L⋈S and S⋈N; Q4 joins S⋈N
// (contained in Q3's MAST — phase-1 merge).
//
// Phase 2 then exercises the rejected-merge outcome the paper describes:
// the union of the two surviving groups closes the cycle C-N-S-L-O-C, so
// merging them would sacrifice data-locality and is rejected — they stay
// separate, duplicating the shared tables (lineitem, nation), exactly the
// WD trade-off of Section 4.3.
func figure5Workload() []Query {
	return []Query{
		{Name: "Q1", Joins: []QueryJoin{
			{TableA: "customer", ColsA: []string{"custkey"}, TableB: "orders", ColsB: []string{"custkey"}},
			{TableA: "orders", ColsA: []string{"orderkey"}, TableB: "lineitem", ColsB: []string{"orderkey"}},
			{TableA: "customer", ColsA: []string{"nationkey"}, TableB: "nation", ColsB: []string{"nationkey"}},
		}},
		{Name: "Q2", Joins: []QueryJoin{
			{TableA: "orders", ColsA: []string{"orderkey"}, TableB: "lineitem", ColsB: []string{"orderkey"}},
		}},
		{Name: "Q3", Joins: []QueryJoin{
			{TableA: "lineitem", ColsA: []string{"suppkey"}, TableB: "supplier", ColsB: []string{"suppkey"}},
			{TableA: "supplier", ColsA: []string{"nationkey"}, TableB: "nation", ColsB: []string{"nationkey"}},
		}},
		{Name: "Q4", Joins: []QueryJoin{
			{TableA: "supplier", ColsA: []string{"nationkey"}, TableB: "nation", ColsB: []string{"nationkey"}},
		}},
	}
}

func TestPaperFigure5Merge(t *testing.T) {
	db := miniTPCH(t)
	d, err := WorkloadDriven(db, figure5Workload(), WDOptions{Parts: 10})
	if err != nil {
		t.Fatal(err)
	}
	if d.UnitsBeforeMerge != 4 {
		t.Fatalf("units before merge = %d", d.UnitsBeforeMerge)
	}
	// Phase 1 absorbs Q2 into Q1 (and Q4 into Q3, whose MAST contains it).
	if d.UnitsAfterPhase1 != 2 {
		t.Fatalf("units after phase 1 = %d, want 2", d.UnitsAfterPhase1)
	}
	// Q1/Q2 share a group; Q3/Q4 share a group; the two groups stay
	// separate because their union has the cycle C-N-S-L-O-C.
	g1, g2 := d.GroupsFor("Q1"), d.GroupsFor("Q2")
	if len(g1) != 1 || len(g2) != 1 || g1[0] != g2[0] {
		t.Fatalf("Q1/Q2 routing = %v/%v, want same group", g1, g2)
	}
	g3, g4 := d.GroupsFor("Q3"), d.GroupsFor("Q4")
	if len(g3) != 1 || len(g4) != 1 || g3[0] != g4[0] {
		t.Fatalf("Q3/Q4 routing = %v/%v, want same group", g3, g4)
	}
	if g1[0] == g3[0] {
		t.Fatal("cyclic union must keep the groups separate")
	}
	if len(d.Groups) != 2 {
		t.Fatalf("final groups = %d, want 2", len(d.Groups))
	}
	// Tables shared by both groups (lineitem, nation) are physically
	// duplicated in the final design — the Section 4.3 trade-off.
	shared := 0
	for _, tbl := range []string{"lineitem", "nation"} {
		in := 0
		for _, g := range d.Groups {
			if g.Tree.HasNode(tbl) {
				in++
			}
		}
		if in == 2 {
			shared++
		}
	}
	if shared != 2 {
		t.Fatalf("lineitem and nation should appear in both groups, got %d shared", shared)
	}
}

func TestWDPhase2CostBasedMerge(t *testing.T) {
	// Without the S-N edge in Q3, phase 1 cannot absorb Q4; phase 2 must
	// merge Q3+Q4 cost-based (shared supplier, acyclic, smaller estimate).
	db := miniTPCH(t)
	qs := []Query{
		{Name: "Q3", Joins: []QueryJoin{
			{TableA: "lineitem", ColsA: []string{"suppkey"}, TableB: "supplier", ColsB: []string{"suppkey"}},
		}},
		{Name: "Q4", Joins: []QueryJoin{
			{TableA: "supplier", ColsA: []string{"nationkey"}, TableB: "nation", ColsB: []string{"nationkey"}},
		}},
	}
	d, err := WorkloadDriven(db, qs, WDOptions{Parts: 10})
	if err != nil {
		t.Fatal(err)
	}
	if d.UnitsAfterPhase1 != 2 {
		t.Fatalf("phase 1 should not merge disjoint-label queries, got %d units", d.UnitsAfterPhase1)
	}
	if len(d.Groups) != 1 {
		t.Fatalf("phase 2 should merge Q3+Q4 into one group, got %d", len(d.Groups))
	}
	g3, g4 := d.GroupsFor("Q3"), d.GroupsFor("Q4")
	if g3[0] != g4[0] {
		t.Fatal("Q3/Q4 must share the merged group")
	}
}

func TestWDPerQueryLocality(t *testing.T) {
	// Each query's own join graph must be fully contained in its group's
	// merged MAST — per-query data-locality is never sacrificed.
	db := miniTPCH(t)
	qs := figure5Workload()
	d, err := WorkloadDriven(db, qs, WDOptions{Parts: 10})
	if err != nil {
		t.Fatal(err)
	}
	sizes := wdSizes(db)
	for _, q := range qs {
		for _, gi := range d.GroupsFor(q.Name) {
			if !q.Graph(sizes).ContainedIn(d.Groups[gi].Tree) {
				t.Errorf("query %s graph not contained in its group tree", q.Name)
			}
		}
	}
}

func TestWDDisablePhase1Ablation(t *testing.T) {
	db := miniTPCH(t)
	d, err := WorkloadDriven(db, figure5Workload(), WDOptions{Parts: 10, DisablePhase1: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.UnitsAfterPhase1 != d.UnitsBeforeMerge {
		t.Fatal("phase 1 disabled must not reduce units")
	}
	// Phase 2 still merges contained units (containment ⊆ acyclic union
	// + size win), so the final design should match the default run.
	def, err := WorkloadDriven(db, figure5Workload(), WDOptions{Parts: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Groups) != len(def.Groups) {
		t.Fatalf("ablated groups = %d, default = %d", len(d.Groups), len(def.Groups))
	}
}

func TestWDDedupEstimatedDR(t *testing.T) {
	// Two identical queries: the second group never materializes —
	// containment merge collapses them; estimated DR must equal the
	// single-query design's DR.
	db := miniTPCH(t)
	q := Query{Name: "QA", Joins: []QueryJoin{
		{TableA: "orders", ColsA: []string{"orderkey"}, TableB: "lineitem", ColsB: []string{"orderkey"}},
	}}
	q2 := q
	q2.Name = "QB"
	d, err := WorkloadDriven(db, []Query{q, q2}, WDOptions{Parts: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Groups) != 1 {
		t.Fatalf("identical queries must share one group, got %d", len(d.Groups))
	}
	dr, err := d.EstimatedDR(wdSizes(db))
	if err != nil {
		t.Fatal(err)
	}
	if dr < 0 || dr > 1 {
		t.Fatalf("estimated DR = %v out of plausible range", dr)
	}
}

func TestWDSingleTableQuery(t *testing.T) {
	db := miniTPCH(t)
	d, err := WorkloadDriven(db, []Query{{Name: "scan", Tables: []string{"customer"}}}, WDOptions{Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Groups) != 1 {
		t.Fatalf("groups = %d", len(d.Groups))
	}
	sc := d.Groups[0].PC.Config.Scheme("customer")
	if sc == nil || sc.Method != partition.Hash {
		t.Fatalf("single-table query scheme = %v, want HASH", sc)
	}
}

func TestWDMultiComponentQuery(t *testing.T) {
	// One query with two disconnected join components yields two units.
	db := miniTPCH(t)
	q := Query{Name: "Qx", Joins: []QueryJoin{
		{TableA: "orders", ColsA: []string{"orderkey"}, TableB: "lineitem", ColsB: []string{"orderkey"}},
		{TableA: "supplier", ColsA: []string{"nationkey"}, TableB: "nation", ColsB: []string{"nationkey"}},
	}}
	d, err := WorkloadDriven(db, []Query{q}, WDOptions{Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d.UnitsBeforeMerge != 2 {
		t.Fatalf("units = %d, want 2", d.UnitsBeforeMerge)
	}
	if len(d.GroupsFor("Qx")) != 2 {
		t.Fatalf("Qx groups = %v, want 2", d.GroupsFor("Qx"))
	}
}

func TestWDEmptyWorkload(t *testing.T) {
	db := miniTPCH(t)
	if _, err := WorkloadDriven(db, nil, WDOptions{Parts: 4}); err == nil {
		t.Fatal("empty workload must error")
	}
}

// ---- Estimation internals ----

func TestEstimateFullReplicationCap(t *testing.T) {
	// supplier referenced from lineitem's suppkey with frequency 600 per
	// supplier: expected copies ≈ n, so PREF supplier on lineitem ≈ full
	// replication but never more than n·|T|.
	db := miniTPCH(t)
	sizes := SizesOf(db)
	hp := NewHistProvider(db, 1, 0)
	cfg := partition.NewConfig(10)
	cfg.SetHash("lineitem", "linekey")
	cfg.SetPref("supplier", "lineitem", []string{"suppkey"}, []string{"suppkey"})
	est, err := EstimateConfig(cfg, sizes, hp)
	if err != nil {
		t.Fatal(err)
	}
	if est.PerTable["supplier"] > float64(100*10)+1e-6 {
		t.Fatalf("supplier estimate %v exceeds full replication", est.PerTable["supplier"])
	}
	if est.PerTable["supplier"] < 900 {
		t.Fatalf("supplier estimate %v, want ≈ full replication (1000)", est.PerTable["supplier"])
	}
}

func TestEstimateHashColocationRule(t *testing.T) {
	db := miniTPCH(t)
	sizes := SizesOf(db)
	hp := NewHistProvider(db, 1, 0)
	// lineitem hashed on orderkey ⇒ orders PREF via orderkey is free.
	cfg := partition.NewConfig(10)
	cfg.SetHash("lineitem", "orderkey")
	cfg.SetPref("orders", "lineitem", []string{"orderkey"}, []string{"orderkey"})
	est, err := EstimateConfig(cfg, sizes, hp)
	if err != nil {
		t.Fatal(err)
	}
	if est.PerTable["orders"] != float64(sizes["orders"]) {
		t.Fatalf("co-located orders estimate = %v, want %d", est.PerTable["orders"], sizes["orders"])
	}
	// Contrast: lineitem hashed on linekey ⇒ orderkeys scatter.
	cfg2 := partition.NewConfig(10)
	cfg2.SetHash("lineitem", "linekey")
	cfg2.SetPref("orders", "lineitem", []string{"orderkey"}, []string{"orderkey"})
	est2, err := EstimateConfig(cfg2, sizes, hp)
	if err != nil {
		t.Fatal(err)
	}
	if est2.PerTable["orders"] <= float64(sizes["orders"]) {
		t.Fatalf("scattered orders estimate = %v, want > %d", est2.PerTable["orders"], sizes["orders"])
	}
}

func TestEstimateActualAgreementScattered(t *testing.T) {
	// Validate the histogram estimator itself (no co-location shortcut):
	// lineitem hashed on linekey, orders PREF on lineitem. Each order has
	// exactly 4 lineitems ⇒ estimate |orders^P| = |O|·E[4,n].
	db := miniTPCH(t)
	sizes := SizesOf(db)
	hp := NewHistProvider(db, 1, 0)
	cfg := partition.NewConfig(10)
	cfg.SetHash("lineitem", "linekey")
	cfg.SetPref("orders", "lineitem", []string{"orderkey"}, []string{"orderkey"})
	cfg.SetReplicated("customer")
	cfg.SetReplicated("nation")
	cfg.SetReplicated("supplier")
	est, err := EstimateConfig(cfg, sizes, hp)
	if err != nil {
		t.Fatal(err)
	}
	pdb, err := partition.Apply(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	actual := float64(pdb.Tables["orders"].StoredRows())
	predicted := est.PerTable["orders"]
	if rel := math.Abs(predicted-actual) / actual; rel > 0.05 {
		t.Fatalf("orders: predicted %v actual %v (rel err %.3f)", predicted, actual, rel)
	}
}

func TestEstimateSampledClose(t *testing.T) {
	db := miniTPCH(t)
	sizes := SizesOf(db)
	exact, err := EstimateConfig(mustSD(t, db).Config, sizes, NewHistProvider(db, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := EstimateConfig(mustSD(t, db).Config, sizes, NewHistProvider(db, 0.2, 42))
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(sampled.Total-exact.Total) / exact.Total; rel > 0.25 {
		t.Fatalf("sampled estimate off by %.3f (exact %v sampled %v)", rel, exact.Total, sampled.Total)
	}
}

func mustSD(t *testing.T, db *table.Database) *Design {
	t.Helper()
	d, err := SchemaDriven(db, SDOptions{Parts: 10})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCombinations(t *testing.T) {
	var got [][]string
	combinations([]string{"a", "b", "c"}, 2, func(s []string) {
		got = append(got, append([]string(nil), s...))
	})
	if len(got) != 3 {
		t.Fatalf("C(3,2) = %d sets", len(got))
	}
	var none [][]string
	combinations([]string{"a"}, 2, func(s []string) { none = append(none, s) })
	if none != nil {
		t.Fatal("k > n must yield nothing")
	}
}

func TestSchemeSignatureDeepEquality(t *testing.T) {
	cfgA := partition.NewConfig(4)
	cfgA.SetHash("lineitem", "orderkey")
	cfgA.SetPref("orders", "lineitem", []string{"orderkey"}, []string{"orderkey"})
	cfgB := partition.NewConfig(4)
	cfgB.SetHash("lineitem", "linekey") // different seed scheme
	cfgB.SetPref("orders", "lineitem", []string{"orderkey"}, []string{"orderkey"})
	sa, err := cfgA.SchemeSignature("orders")
	if err != nil {
		t.Fatal(err)
	}
	sb, err := cfgB.SchemeSignature("orders")
	if err != nil {
		t.Fatal(err)
	}
	if sa == sb {
		t.Fatal("signatures must differ when the upstream chain differs")
	}
	sa2, _ := cfgA.SchemeSignature("orders")
	if sa != sa2 {
		t.Fatal("signature must be stable")
	}
}
