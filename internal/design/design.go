// Package design implements the paper's two automated partitioning design
// algorithms: schema-driven (SD, Section 3) and workload-driven (WD,
// Section 4), both built on the PREF scheme. The optimization goal is to
// maximize data-locality first and minimize estimated data-redundancy
// second.
package design

import (
	"fmt"
	"sort"

	"pref/internal/catalog"
	"pref/internal/graph"
	"pref/internal/stats"
	"pref/internal/table"
)

// Sizes maps table names to cardinalities; edge weights and estimates are
// derived from it.
type Sizes map[string]int

// SizesOf extracts table cardinalities from a database.
func SizesOf(db *table.Database) Sizes {
	s := make(Sizes, len(db.Tables))
	for name, d := range db.Tables {
		s[name] = d.Len()
	}
	return s
}

// SchemaGraph builds the schema graph G_S of Section 3.1: one node per
// table, one edge per referential constraint, labeled with the equi-join
// predicate and weighted by the size of the smaller table (the relation a
// remote join would ship).
func SchemaGraph(s *catalog.Schema, sizes Sizes) *graph.Graph {
	g := graph.New()
	for _, t := range s.Tables() {
		g.AddNode(t.Name)
	}
	for _, fk := range s.FKs {
		w := sizes[fk.FromTable]
		if sizes[fk.ToTable] < w {
			w = sizes[fk.ToTable]
		}
		g.AddEdge(graph.Edge{
			A: fk.FromTable, B: fk.ToTable,
			ACols: fk.FromCols, BCols: fk.ToCols,
			Weight: int64(w),
		})
	}
	return g
}

// HistProvider supplies (optionally sampled) join-key histograms and
// memoizes them per (table, columns). Rate 1 builds exact histograms;
// lower rates reproduce the sampling trade-off of Figure 13.
type HistProvider struct {
	DB    *table.Database
	Rate  float64
	Seed  int64
	cache map[string]*stats.Histogram
}

// NewHistProvider returns a provider over db with the given sampling rate.
func NewHistProvider(db *table.Database, rate float64, seed int64) *HistProvider {
	if rate <= 0 || rate > 1 {
		rate = 1
	}
	return &HistProvider{DB: db, Rate: rate, Seed: seed, cache: map[string]*stats.Histogram{}}
}

// Hist returns the histogram of the given columns of a table.
func (h *HistProvider) Hist(tbl string, cols []string) (*stats.Histogram, error) {
	key := tbl + "(" + fmt.Sprint(cols) + ")"
	if got, ok := h.cache[key]; ok {
		return got, nil
	}
	d, ok := h.DB.Tables[tbl]
	if !ok {
		return nil, fmt.Errorf("design: no data for table %s", tbl)
	}
	hist, err := stats.BuildSampledHistogram(d, h.Rate, h.Seed, cols...)
	if err != nil {
		return nil, err
	}
	h.cache[key] = hist
	return hist, nil
}

// subsetOf reports whether every string of a appears in b.
func subsetOf(a, b []string) bool {
	set := make(map[string]bool, len(b))
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}

// sortedNames returns the keys of a string set, sorted.
func sortedNames(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
