package design

import (
	"fmt"
	"sort"
	"strings"

	"pref/internal/graph"
	"pref/internal/table"
)

// QueryJoin is one equi-join predicate of a workload query:
// TableA.ColsA[i] = TableB.ColsB[i].
type QueryJoin struct {
	TableA string
	ColsA  []string
	TableB string
	ColsB  []string
}

// Query is a workload query abstracted to what the WD algorithm consumes
// (Section 4.1): the tables it reads and its equi-join predicates.
// Non-equi joins are omitted from the graph by construction, as the paper
// prescribes.
type Query struct {
	Name string
	// Tables lists tables read without joins (single-table components).
	Tables []string
	Joins  []QueryJoin
}

// Graph derives the query's schema graph G_S(Q) with table-size weights.
func (q Query) Graph(sizes Sizes) *graph.Graph {
	g := graph.New()
	for _, t := range q.Tables {
		g.AddNode(t)
	}
	for _, j := range q.Joins {
		w := sizes[j.TableA]
		if sizes[j.TableB] < w {
			w = sizes[j.TableB]
		}
		g.AddEdge(graph.Edge{
			A: j.TableA, B: j.TableB,
			ACols: j.ColsA, BCols: j.ColsB,
			Weight: int64(w),
		})
	}
	return g
}

// WDOptions configures the workload-driven design algorithm.
type WDOptions struct {
	// Parts is the number of partitions / nodes (required).
	Parts int
	// SampleRate / SampleSeed control histogram sampling (0/1 = exact).
	SampleRate float64
	SampleSeed int64
	// MaxMASTs bounds equal-weight alternate MASTs evaluated per query.
	MaxMASTs int
	// DisablePhase1 skips the containment merge (ablation only).
	DisablePhase1 bool
	// NoRedundancy lists tables that must stay duplicate-free in every
	// group (Section 3.4 constraints applied per merged MAST). With all
	// tables listed this is the paper's OLTP outlook: transactions touch
	// tuple groups described by join predicates, clustered without any
	// redundancy.
	NoRedundancy []string
}

// WDGroup is one merged MAST of the final design, with its optimal
// partitioning configuration.
type WDGroup struct {
	// Units are the merged unit names ("query#component").
	Units []string
	// Queries are the workload queries routed to this group.
	Queries []string
	// Tree is the merged MAST.
	Tree *graph.Graph
	// PC is the group's optimal configuration.
	PC *PC
}

// WDDesign is the output of the workload-driven algorithm: a set of merged
// MASTs, each with its own configuration. A table may appear in several
// groups under different schemes; EstimatedDR de-duplicates tables that
// share an identical deep scheme (Section 4.3).
type WDDesign struct {
	Parts  int
	Groups []*WDGroup
	// UnitsBeforeMerge / AfterPhase1 record the search-space reduction
	// the paper reports (165 → 17 → 7 for TPC-DS).
	UnitsBeforeMerge int
	UnitsAfterPhase1 int

	route map[string][]int // query name → group indexes
}

// GroupsFor returns the indexes of the groups a query was routed to (one
// per connected component of the query's join graph).
func (d *WDDesign) GroupsFor(query string) []int {
	return append([]int(nil), d.route[query]...)
}

// EstimatedDR computes the design's global estimated data-redundancy:
// tables occurring in several groups under the same deep scheme are
// counted once; under different schemes they are physically duplicated.
// The denominator is Σ|T| over distinct tables used by the workload.
func (d *WDDesign) EstimatedDR(sizes Sizes) (float64, error) {
	type copyKey struct{ table, sig string }
	stored := map[copyKey]float64{}
	origTables := map[string]bool{}
	for _, g := range d.Groups {
		for t := range g.PC.Config.Schemes {
			sig, err := g.PC.Config.SchemeSignature(t)
			if err != nil {
				return 0, err
			}
			stored[copyKey{t, sig}] = g.PC.Est.PerTable[t]
			origTables[t] = true
		}
	}
	var total float64
	for _, v := range stored {
		total += v
	}
	var orig int
	for t := range origTables {
		orig += sizes[t]
	}
	if orig == 0 {
		return 0, nil
	}
	return total/float64(orig) - 1, nil
}

// FilterWorkload removes the given (typically small, replicated) tables
// from a workload's query graphs: edges touching an excluded table are
// dropped, and a query endpoint left without any edge survives as a
// joinless table so the query still routes to a group holding it.
func FilterWorkload(w []Query, excluded []string) []Query {
	drop := map[string]bool{}
	for _, t := range excluded {
		drop[t] = true
	}
	var out []Query
	for _, q := range w {
		nq := Query{Name: q.Name}
		covered := map[string]bool{}
		for _, e := range q.Joins {
			if !drop[e.TableA] && !drop[e.TableB] {
				nq.Joins = append(nq.Joins, e)
				covered[e.TableA] = true
				covered[e.TableB] = true
			}
		}
		keepTable := func(t string) {
			if !drop[t] && !covered[t] {
				covered[t] = true
				nq.Tables = append(nq.Tables, t)
			}
		}
		for _, t := range q.Tables {
			keepTable(t)
		}
		// Endpoints orphaned by dropped edges stay as joinless tables.
		for _, e := range q.Joins {
			keepTable(e.TableA)
			keepTable(e.TableB)
		}
		if len(nq.Tables)+len(nq.Joins) > 0 {
			out = append(out, nq)
		}
	}
	return out
}

// unit is one connected component of one query's join graph, the
// granularity at which merging happens.
type unit struct {
	name    string
	queries map[string]bool
	tree    *graph.Graph
	pc      *PC
}

// WorkloadDriven runs the workload-driven design algorithm of Section 4:
// per-query MASTs, a containment merge (phase 1), then cost-based merging
// driven by estimated partitioned size with memoization (phase 2).
func WorkloadDriven(db *table.Database, queries []Query, opt WDOptions) (*WDDesign, error) {
	if opt.Parts < 1 {
		return nil, fmt.Errorf("design: Parts = %d, want >= 1", opt.Parts)
	}
	if opt.MaxMASTs <= 0 {
		opt.MaxMASTs = 3
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("design: empty workload")
	}
	sizes := SizesOf(db)
	hp := NewHistProvider(db, opt.SampleRate, opt.SampleSeed)

	solveTree := func(m *graph.Graph) (*PC, error) {
		if len(opt.NoRedundancy) > 0 {
			return FindOptimalPCConstrained(m, db.Schema, sizes, hp, opt.Parts, opt.NoRedundancy, 0)
		}
		return FindOptimalPC(m, db.Schema, sizes, hp, opt.Parts)
	}
	solveBestMAST := func(g *graph.Graph) (*graph.Graph, *PC, error) {
		masts := g.MaximumSpanningTrees(opt.MaxMASTs)
		var bestTree *graph.Graph
		var bestPC *PC
		for _, m := range masts {
			pc, err := solveTree(m)
			if err != nil {
				return nil, nil, err
			}
			if bestPC == nil || pc.Est.Total < bestPC.Est.Total {
				bestTree, bestPC = m, pc
			}
		}
		return bestTree, bestPC, nil
	}

	// Step 1: one unit per connected component per query, each with its
	// optimal MAST and configuration.
	var units []*unit
	for _, q := range queries {
		qg := q.Graph(sizes)
		for i, comp := range qg.Components() {
			sub := qg.Subgraph(comp)
			tree, pc, err := solveBestMAST(sub)
			if err != nil {
				return nil, fmt.Errorf("design: query %s: %w", q.Name, err)
			}
			units = append(units, &unit{
				name:    fmt.Sprintf("%s#%d", q.Name, i),
				queries: map[string]bool{q.Name: true},
				tree:    tree,
				pc:      pc,
			})
		}
	}
	before := len(units)

	// Phase 1: merge units whose MAST is fully contained in another
	// unit's MAST (Section 4.1). No cycles can arise, and the absorbing
	// unit's configuration is unchanged.
	if !opt.DisablePhase1 {
		units = containmentMerge(units)
	}
	after1 := len(units)

	// Phase 2: cost-based merging. Process units in a deterministic
	// order; at each level, either keep the new unit standalone or merge
	// it into an existing group when the union stays acyclic and the
	// merged estimate beats the sum of the parts (Section 4.3).
	sort.Slice(units, func(i, j int) bool { return units[i].name < units[j].name })
	memo := map[string]*PC{} // merged-tree signature → optimal PC
	solveMerged := func(tree *graph.Graph) (*PC, error) {
		sig := treeSignature(tree)
		if pc, ok := memo[sig]; ok {
			return pc, nil
		}
		var pcs []*PC
		for _, comp := range tree.Components() {
			pc, err := solveTree(tree.Subgraph(comp))
			if err != nil {
				return nil, err
			}
			pcs = append(pcs, pc)
		}
		pc := mergePCs(opt.Parts, pcs)
		memo[sig] = pc
		return pc, nil
	}

	var groups []*unit
	for _, u := range units {
		bestIdx := -1
		var bestMerged *unit
		bestGain := 0.0
		for i, g := range groups {
			merged := g.tree.Union(u.tree)
			if !merged.IsAcyclic() {
				continue // would sacrifice data-locality
			}
			if !sharesNode(g.tree, u.tree) {
				continue // disjoint merge can never reduce redundancy
			}
			pc, err := solveMerged(merged)
			if err != nil {
				return nil, err
			}
			gain := g.pc.Est.Total + u.pc.Est.Total - pc.Est.Total
			if gain > bestGain+1e-9 {
				bestGain = gain
				bestIdx = i
				bestMerged = &unit{
					name:    g.name + "+" + u.name,
					queries: unionSets(g.queries, u.queries),
					tree:    merged,
					pc:      pc,
				}
			}
		}
		if bestIdx >= 0 {
			groups[bestIdx] = bestMerged
		} else {
			groups = append(groups, u)
		}
	}

	d := &WDDesign{
		Parts:            opt.Parts,
		UnitsBeforeMerge: before,
		UnitsAfterPhase1: after1,
		route:            map[string][]int{},
	}
	for gi, g := range groups {
		wg := &WDGroup{Tree: g.tree, PC: g.pc}
		wg.Units = strings.Split(g.name, "+")
		sort.Strings(wg.Units)
		wg.Queries = sortedNames(g.queries)
		d.Groups = append(d.Groups, wg)
		for q := range g.queries {
			d.route[q] = append(d.route[q], gi)
		}
	}
	return d, nil
}

// containmentMerge implements phase 1: units fully contained in a larger
// unit's MAST are absorbed. Units are scanned largest-first so chains of
// containment resolve in one pass.
func containmentMerge(units []*unit) []*unit {
	ordered := append([]*unit(nil), units...)
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.tree.NumEdges() != b.tree.NumEdges() {
			return a.tree.NumEdges() > b.tree.NumEdges()
		}
		if a.tree.NumNodes() != b.tree.NumNodes() {
			return a.tree.NumNodes() > b.tree.NumNodes()
		}
		return a.name < b.name
	})
	absorbed := make([]bool, len(ordered))
	for j := len(ordered) - 1; j >= 0; j-- {
		if absorbed[j] {
			continue
		}
		for i := 0; i < j; i++ {
			if absorbed[i] {
				continue
			}
			if ordered[j].tree.ContainedIn(ordered[i].tree) {
				ordered[i].queries = unionSets(ordered[i].queries, ordered[j].queries)
				absorbed[j] = true
				break
			}
		}
	}
	var out []*unit
	for i, u := range ordered {
		if !absorbed[i] {
			out = append(out, u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

func sharesNode(a, b *graph.Graph) bool {
	for _, n := range a.Nodes() {
		if b.HasNode(n) {
			return true
		}
	}
	return false
}

func unionSets(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func treeSignature(g *graph.Graph) string {
	var parts []string
	for _, e := range g.Edges() {
		parts = append(parts, e.ID())
	}
	sort.Strings(parts)
	return strings.Join(append(parts, g.Nodes()...), ";")
}

// TotalEstimatedSize sums the groups' estimated partitioned sizes without
// de-duplication — the quantity phase 2 minimizes.
func (d *WDDesign) TotalEstimatedSize() float64 {
	t := 0.0
	for _, g := range d.Groups {
		t += g.PC.Est.Total
	}
	return t
}
