package design

import (
	"math"
	"testing"

	"pref/internal/catalog"
	"pref/internal/partition"
	"pref/internal/stats"
	"pref/internal/table"
	"pref/internal/value"
)

func hist(t *testing.T, keys []int64, rate float64, seed int64) *stats.Histogram {
	t.Helper()
	m := catalog.MustTable("h", []catalog.Column{{Name: "k", Kind: value.Int}}, "k")
	d := table.NewData(m)
	for _, k := range keys {
		d.MustAppend(value.Tuple{k})
	}
	h, err := stats.BuildSampledHistogram(d, rate, seed, "k")
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func repeat(k int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = k
	}
	return out
}

func seq(n int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

func TestJointFactorUniqueKeys(t *testing.T) {
	// Referenced key unique, every referencing tuple matched: factor 1.
	ref := hist(t, seq(100), 1, 0)
	ring := hist(t, seq(100), 1, 0)
	if got := jointRedundancyFactor(ref, ring, 10, 1); got != 1 {
		t.Fatalf("unique-matched factor = %v, want 1", got)
	}
}

func TestJointFactorAllOrphans(t *testing.T) {
	// No key overlap: every referencing tuple stored once.
	ref := hist(t, seq(50), 1, 0)
	ring := hist(t, []int64{100, 101, 102}, 1, 0)
	if got := jointRedundancyFactor(ref, ring, 10, 1); got != 1 {
		t.Fatalf("all-orphan factor = %v, want 1", got)
	}
}

func TestJointFactorHotKey(t *testing.T) {
	// One referenced key with frequency 1000 (≈ fully scattered over 10
	// partitions); half the referencing rows match it, half are orphans.
	refKeys := repeat(7, 1000)
	ringKeys := append(repeat(7, 10), seq(10)[0:0]...)
	ringKeys = append(ringKeys, []int64{900, 901, 902, 903, 904, 905, 906, 907, 908, 909}...)
	ref := hist(t, refKeys, 1, 0)
	ring := hist(t, ringKeys, 1, 0)
	got := jointRedundancyFactor(ref, ring, 10, 1)
	// matched 10 rows × E[1000,10]≈10 copies + 10 orphans = ~110 of 20.
	want := (10*stats.ExpectedCopies(1000, 10) + 10) / 20
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("hot-key factor = %v, want %v", got, want)
	}
}

func TestJointFactorClampsAtN(t *testing.T) {
	ref := hist(t, repeat(1, 100000), 1, 0)
	ring := hist(t, repeat(1, 5), 1, 0)
	if got := jointRedundancyFactor(ref, ring, 4, 1); got != 4 {
		t.Fatalf("factor = %v, want clamp at n=4", got)
	}
}

func TestJointFactorEmptyRing(t *testing.T) {
	ref := hist(t, seq(10), 1, 0)
	ring := hist(t, nil, 1, 0)
	if got := jointRedundancyFactor(ref, ring, 4, 1); got != 1 {
		t.Fatalf("empty referencing factor = %v, want 1", got)
	}
}

func TestJointFactorInflationSaturates(t *testing.T) {
	// 100 keys, referenced freq 3, all referencing rows matched. With a
	// large upstream inflation the per-tuple copies saturate at n instead
	// of multiplying past it.
	var refKeys, ringKeys []int64
	for k := int64(0); k < 100; k++ {
		refKeys = append(refKeys, repeat(k, 3)...)
		ringKeys = append(ringKeys, k)
	}
	ref := hist(t, refKeys, 1, 0)
	ring := hist(t, ringKeys, 1, 0)
	plain := jointRedundancyFactor(ref, ring, 10, 1)
	inflated := jointRedundancyFactor(ref, ring, 10, 5)
	if inflated <= plain {
		t.Fatalf("inflation must increase copies: %v vs %v", inflated, plain)
	}
	if inflated > 10 {
		t.Fatalf("copies per tuple must saturate at n: %v", inflated)
	}
	want := stats.ExpectedCopiesReal(15, 10)
	if math.Abs(inflated-want) > 1e-9 {
		t.Fatalf("inflated factor = %v, want E[15,10] = %v", inflated, want)
	}
}

func TestJointFactorUnderSampling(t *testing.T) {
	// 200 shared keys, referenced freq 5 each, referencing freq 2 each.
	var refKeys, ringKeys []int64
	for k := int64(0); k < 200; k++ {
		refKeys = append(refKeys, repeat(k, 5)...)
		ringKeys = append(ringKeys, repeat(k, 2)...)
	}
	exact := jointRedundancyFactor(hist(t, refKeys, 1, 3), hist(t, ringKeys, 1, 3), 10, 1)
	sampled := jointRedundancyFactor(hist(t, refKeys, 0.3, 3), hist(t, ringKeys, 0.3, 3), 10, 1)
	if math.Abs(exact-sampled)/exact > 0.15 {
		t.Fatalf("sampled factor %v deviates from exact %v", sampled, exact)
	}
}

// The estimator end-to-end: estimated DR tracks actual DR across seed
// choices on the mini TPC-H schema.
func TestEstimateTracksActualAcrossSeeds(t *testing.T) {
	db := miniTPCH(t)
	sizes := SizesOf(db)
	hp := NewHistProvider(db, 1, 0)
	gs := SchemaGraph(db.Schema, sizes)
	mast := gs.MaximumSpanningTree()
	for _, seed := range mast.Nodes() {
		cfg, _, err := BuildPC(mast, []string{seed}, db.Schema, 10)
		if err != nil {
			t.Fatal(err)
		}
		est, err := EstimateConfig(cfg, sizes, hp)
		if err != nil {
			t.Fatal(err)
		}
		pdb, err := partition.Apply(db, cfg)
		if err != nil {
			t.Fatal(err)
		}
		actual := pdb.DataRedundancy()
		predicted := est.DR()
		if math.Abs(predicted-actual) > 0.10*(1+actual) {
			t.Errorf("seed %s: predicted DR %.4f vs actual %.4f", seed, predicted, actual)
		}
	}
}
