package design

import (
	"testing"

	"pref/internal/partition"
)

// The paper's OLTP outlook: WD with no-redundancy constraints on every
// table clusters each transaction's tuple group without duplicating
// anything.
func TestWDNoRedundancyOLTP(t *testing.T) {
	db := miniTPCH(t)
	all := db.Schema.TableNames()
	qs := figure5Workload()

	wd, err := WorkloadDriven(db, qs, WDOptions{Parts: 10, NoRedundancy: all})
	if err != nil {
		t.Fatal(err)
	}
	for gi, g := range wd.Groups {
		// Materialize each group and verify zero duplicates for every
		// constrained table.
		sub := db
		var absent []string
		for _, tbl := range db.Schema.TableNames() {
			if g.PC.Config.Scheme(tbl) == nil {
				absent = append(absent, tbl)
			}
		}
		if len(absent) > 0 {
			sub = db.Without(absent...)
		}
		pdb, err := partition.Apply(sub, g.PC.Config)
		if err != nil {
			t.Fatalf("group %d: %v", gi, err)
		}
		for tbl, pt := range pdb.Tables {
			if pt.DuplicateRows() != 0 {
				t.Errorf("group %d: table %s has %d duplicates under the OLTP constraint",
					gi, tbl, pt.DuplicateRows())
			}
		}
	}
	// Constrained groups may need several seeds and lose some locality,
	// but every query still routes.
	for _, q := range qs {
		if len(wd.GroupsFor(q.Name)) == 0 {
			t.Errorf("query %s unrouted", q.Name)
		}
	}
}

// Constrained and unconstrained WD differ exactly in the redundancy they
// allow.
func TestWDConstraintChangesDesign(t *testing.T) {
	db := miniTPCH(t)
	qs := []Query{{Name: "Q", Joins: []QueryJoin{
		// supplier PREF'd by lineitem would normally duplicate supplier
		// heavily (suppkey frequency ≈ 600).
		{TableA: "lineitem", ColsA: []string{"suppkey"}, TableB: "supplier", ColsB: []string{"suppkey"}},
		{TableA: "lineitem", ColsA: []string{"orderkey"}, TableB: "orders", ColsB: []string{"orderkey"}},
	}}}

	free, err := WorkloadDriven(db, qs, WDOptions{Parts: 10})
	if err != nil {
		t.Fatal(err)
	}
	constrained, err := WorkloadDriven(db, qs, WDOptions{Parts: 10, NoRedundancy: db.Schema.TableNames()})
	if err != nil {
		t.Fatal(err)
	}
	sizes := SizesOf(db)
	freeDR, err := free.EstimatedDR(sizes)
	if err != nil {
		t.Fatal(err)
	}
	consDR, err := constrained.EstimatedDR(sizes)
	if err != nil {
		t.Fatal(err)
	}
	if consDR > 1e-6 {
		t.Fatalf("constrained DR = %v, want 0", consDR)
	}
	if freeDR <= consDR {
		t.Fatalf("unconstrained design should accept redundancy (%v) the constrained one refuses (%v)",
			freeDR, consDR)
	}
	// The constrained group needs more than one seed (the L-S and L-O
	// edges cannot both be covered without duplicating something).
	if len(constrained.Groups[0].PC.Seeds) < 2 {
		t.Fatalf("constrained seeds = %v, want ≥ 2", constrained.Groups[0].PC.Seeds)
	}
}
