package design

import (
	"fmt"

	"pref/internal/partition"
	"pref/internal/stats"
)

// Estimate is the predicted post-partitioning footprint of a configuration
// (Appendix A): per-table sizes and the database total.
type Estimate struct {
	PerTable map[string]float64
	Total    float64
	// OriginalTotal is Σ|T| over the estimated tables, so
	// DR = Total/OriginalTotal − 1.
	OriginalTotal int
}

// DR returns the estimated data-redundancy of the configuration.
func (e *Estimate) DR() float64 {
	if e.OriginalTotal == 0 {
		return 0
	}
	return e.Total/float64(e.OriginalTotal) - 1
}

// jointRedundancyFactor computes a table's expected copies per tuple from
// both sides' join-key histograms:
//
//	[ Σ_{v∈Ve} E_{f(v)·m, n}[X]·g(v) + (|Tj| − Σ_{v∈Ve} g(v)) ] / |Tj|
//
// where f(v)/g(v) are the key frequencies in the referenced/referencing
// table and m is the referenced table's own chain inflation: a referencing
// tuple expects as many copies as distinct partitions its f·m effective
// partner occurrences hit — applying the (concave) expected-copies
// transform to the scaled frequency saturates per tuple at n, which a
// plain product of per-edge factors does not. Unmatched tuples are stored
// once.
func jointRedundancyFactor(refHist, ringHist *stats.Histogram, n int, refInflation float64) float64 {
	if ringHist.Rows == 0 {
		return 1
	}
	if refInflation < 1 {
		refInflation = 1
	}
	expected := 0.0
	matched := 0.0
	for key, f := range refHist.Freq {
		g, ok := ringHist.Freq[key]
		if !ok {
			continue
		}
		expected += stats.ExpectedCopiesReal(float64(f)*refInflation, n) * float64(g)
		matched += float64(g)
	}
	// Both histograms sample the same key universe (same rate and salt),
	// so the sampled sums extrapolate by 1/rate.
	expected /= ringHist.Rate
	matched /= ringHist.Rate
	orphans := float64(ringHist.Rows) - matched
	if orphans < 0 {
		orphans = 0
	}
	r := (expected + orphans) / float64(ringHist.Rows)
	if r < 1 {
		r = 1
	}
	if r > float64(n) {
		r = float64(n)
	}
	return r
}

// EstimateConfig predicts |T^P| for every table of a configuration using
// the redundancy factors of Appendix A: a PREF table's size is its original
// cardinality times the product of the redundancy factors of all edges on
// its partitioning-predicate path down to the (redundancy-free) seed table.
//
// Two refinements tighten the paper's literal r(e) formula
// (Σ_{v∈Ve} E_{f(v),n}[X] / |Tj|, kept in internal/stats for comparison —
// see the ablation-estimator experiment):
//
//   - Structural: when the referenced table is hash-partitioned on (a
//     subset of) the edge's referenced columns, all partitioning partners
//     of a referencing tuple are co-located by construction, so r(e) = 1 —
//     this is what makes the seed's heaviest edge free (Section 3.1 picks
//     the seed's partitioning attribute that way on purpose).
//   - Joint: the expected copies of each key are weighted by the key's
//     multiplicity on the *referencing* side, and referencing tuples
//     without any partner contribute exactly one stored copy (they are
//     placed round-robin, Definition 1 condition 2). The literal formula
//     over-multiplies along deep chains — e.g. TPC-DS dimension chains —
//     because clamping each factor at 1 hides the unmatched fraction.
func EstimateConfig(cfg *partition.Config, sizes Sizes, hp *HistProvider) (*Estimate, error) {
	est := &Estimate{PerTable: make(map[string]float64, len(cfg.Schemes))}
	// inflation[T] is the expected number of stored copies per original
	// tuple of T (≥ 1; 1 for seed-side tables).
	inflation := make(map[string]float64)

	var inflate func(tbl string) (float64, error)
	inflate = func(tbl string) (float64, error) {
		if f, ok := inflation[tbl]; ok {
			return f, nil
		}
		ts := cfg.Scheme(tbl)
		if ts == nil || ts.Method != partition.Pref {
			inflation[tbl] = 1
			return 1, nil
		}
		parentScheme := cfg.Scheme(ts.RefTable)
		if parentScheme == nil {
			return 0, fmt.Errorf("design: table %s references unconfigured table %s", tbl, ts.RefTable)
		}
		var f float64
		if parentScheme.Method == partition.Hash && subsetOf(parentScheme.Cols, ts.Pred.ReferencedCols) {
			// Equal referenced-key ⇒ equal hash key ⇒ same partition.
			f = 1
		} else {
			parentInfl, err := inflate(ts.RefTable)
			if err != nil {
				return 0, err
			}
			refHist, err := hp.Hist(ts.RefTable, ts.Pred.ReferencedCols)
			if err != nil {
				return 0, err
			}
			ringHist, err := hp.Hist(tbl, ts.Pred.ReferencingCols)
			if err != nil {
				return 0, err
			}
			f = jointRedundancyFactor(refHist, ringHist, cfg.NumPartitions, parentInfl)
		}
		inflation[tbl] = f
		return f, nil
	}

	for name, ts := range cfg.Schemes {
		orig, ok := sizes[name]
		if !ok {
			return nil, fmt.Errorf("design: no size for table %s", name)
		}
		est.OriginalTotal += orig
		switch ts.Method {
		case partition.Replicated:
			est.PerTable[name] = float64(orig * cfg.NumPartitions)
		case partition.Pref:
			f, err := inflate(name)
			if err != nil {
				return nil, err
			}
			est.PerTable[name] = float64(orig) * f
		default:
			est.PerTable[name] = float64(orig)
		}
		est.Total += est.PerTable[name]
	}
	return est, nil
}
