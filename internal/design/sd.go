package design

import (
	"fmt"

	"pref/internal/graph"
	"pref/internal/partition"
	"pref/internal/table"
)

// SDOptions configures the schema-driven design algorithm.
type SDOptions struct {
	// Parts is the number of partitions / nodes (required, ≥ 1).
	Parts int
	// NoRedundancy lists tables that must remain redundancy-free
	// (Section 3.4); satisfied by multi-seed configurations.
	NoRedundancy []string
	// SampleRate in (0,1] builds histograms from a Bernoulli sample;
	// 0 or 1 means exact (Section 5.4 studies this trade-off).
	SampleRate float64
	// SampleSeed seeds the sampler for reproducibility.
	SampleSeed int64
	// MaxMASTs bounds how many equal-weight alternate MASTs are evaluated
	// per connected component (Section 3.1 notes several can exist).
	// Default 3.
	MaxMASTs int
	// MaxSeeds caps the multi-seed search depth (default: all tables).
	MaxSeeds int
}

// Design is a complete automated design: the configuration, the graphs it
// was derived from, and its predicted quality.
type Design struct {
	// Config assigns a scheme to every table considered by the algorithm.
	Config *partition.Config
	// Graph is the schema graph the design was derived from.
	Graph *graph.Graph
	// Eco is the set of edges actually used for co-partitioning.
	Eco *graph.Graph
	// Seeds are the chosen seed tables (one per region per component).
	Seeds []string
	// Est is the predicted post-partitioning footprint.
	Est *Estimate
	// DL is the data-locality Σ_{e∈Eco} w(e) / Σ_{e∈G_S} w(e).
	DL float64
}

// SchemaDriven runs the schema-driven design algorithm of Section 3:
// build the schema graph from referential constraints, extract the maximum
// spanning tree per connected component, and enumerate seed choices to
// minimize estimated redundancy (Listing 1), honoring any no-redundancy
// constraints by growing the seed set (Section 3.4).
func SchemaDriven(db *table.Database, opt SDOptions) (*Design, error) {
	if opt.Parts < 1 {
		return nil, fmt.Errorf("design: Parts = %d, want >= 1", opt.Parts)
	}
	if opt.MaxMASTs <= 0 {
		opt.MaxMASTs = 3
	}
	sizes := SizesOf(db)
	hp := NewHistProvider(db, opt.SampleRate, opt.SampleSeed)
	gs := SchemaGraph(db.Schema, sizes)

	var pcs []*PC
	for _, comp := range gs.Components() {
		sub := gs.Subgraph(comp)
		masts := sub.MaximumSpanningTrees(opt.MaxMASTs)
		var best *PC
		for _, mast := range masts {
			pc, err := solveTree(mast, db, sizes, hp, opt)
			if err != nil {
				return nil, fmt.Errorf("design: component %v: %w", comp, err)
			}
			if best == nil || better(pc, best) {
				best = pc
			}
		}
		pcs = append(pcs, best)
	}
	merged := mergePCs(opt.Parts, pcs)
	return &Design{
		Config: merged.Config,
		Graph:  gs,
		Eco:    merged.Eco,
		Seeds:  merged.Seeds,
		Est:    merged.Est,
		DL:     graph.DataLocality(gs, merged.Eco),
	}, nil
}

// solveTree finds the best configuration for one MAST, constrained or not.
func solveTree(mast *graph.Graph, db *table.Database, sizes Sizes, hp *HistProvider, opt SDOptions) (*PC, error) {
	if len(opt.NoRedundancy) > 0 {
		return FindOptimalPCConstrained(mast, db.Schema, sizes, hp, opt.Parts, opt.NoRedundancy, opt.MaxSeeds)
	}
	return FindOptimalPC(mast, db.Schema, sizes, hp, opt.Parts)
}

// better orders PCs by kept co-partitioning weight (locality) first,
// estimated size second.
func better(a, b *PC) bool {
	wa, wb := a.Eco.TotalWeight(), b.Eco.TotalWeight()
	if wa != wb {
		return wa > wb
	}
	return a.Est.Total < b.Est.Total
}
