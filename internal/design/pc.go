package design

import (
	"fmt"
	"math"
	"sort"

	"pref/internal/catalog"
	"pref/internal/graph"
	"pref/internal/partition"
)

// PC bundles a partitioning configuration with its estimate and the edges
// it actually co-partitions on (Eco ⊆ tree edges; edges cut between
// multi-seed regions are excluded).
type PC struct {
	Config *partition.Config
	Est    *Estimate
	Seeds  []string
	Eco    *graph.Graph
}

// BuildPC constructs the partitioning configuration for a spanning tree
// (or forest) and a set of seed tables, following the pattern of Listing 1:
// every seed is hash-partitioned on the join attribute of its heaviest
// incident tree edge (falling back to its primary key), and every other
// table is recursively PREF-partitioned toward its nearest seed.
//
// Regions are formed by deterministic multi-source BFS over the tree;
// every component must contain at least one seed. Edges crossing regions
// are cut (not co-partitioned).
func BuildPC(tree *graph.Graph, seeds []string, schema *catalog.Schema, n int) (*partition.Config, *graph.Graph, error) {
	seedSet := map[string]bool{}
	for _, s := range seeds {
		if !tree.HasNode(s) {
			return nil, nil, fmt.Errorf("design: seed %s not in tree", s)
		}
		seedSet[s] = true
	}
	for _, comp := range tree.Components() {
		has := false
		for _, t := range comp {
			if seedSet[t] {
				has = true
				break
			}
		}
		if !has {
			return nil, nil, fmt.Errorf("design: component %v has no seed", comp)
		}
	}

	cfg := partition.NewConfig(n)
	eco := graph.New()
	for _, t := range tree.Nodes() {
		eco.AddNode(t)
	}

	// Seed schemes.
	for _, s := range sortedNames(seedSet) {
		cols := seedHashCols(tree, s, schema)
		cfg.SetHash(s, cols...)
	}

	// Multi-source BFS assigning every node a parent toward its region's
	// seed; the BFS order (sorted seeds, then sorted adjacency) is
	// deterministic so designs are reproducible.
	parent := map[string]graph.Edge{}
	owned := map[string]bool{}
	queue := sortedNames(seedSet)
	for _, s := range queue {
		owned[s] = true
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range tree.EdgesAt(cur) {
			next := e.Other(cur)
			if owned[next] {
				continue
			}
			owned[next] = true
			parent[next] = e
			queue = append(queue, next)
		}
	}

	for child, e := range parent {
		p := e.Other(child)
		cfg.SetPref(child, p, e.ColsOf(child), e.ColsOf(p))
		eco.AddEdge(e)
	}
	return cfg, eco, nil
}

// seedHashCols picks the partitioning attribute for a seed table: the
// seed-side columns of its heaviest incident tree edge (Section 3.1), or
// the primary key (or first column) if the seed is isolated.
func seedHashCols(tree *graph.Graph, seed string, schema *catalog.Schema) []string {
	edges := tree.EdgesAt(seed) // weight-descending
	if len(edges) > 0 {
		return edges[0].ColsOf(seed)
	}
	t := schema.Table(seed)
	if t != nil && len(t.PK) > 0 {
		return append([]string(nil), t.PK...)
	}
	if t != nil && t.NumCols() > 0 {
		return []string{t.Columns[0].Name}
	}
	return nil
}

// FindOptimalPC is Listing 1: enumerate one configuration per candidate
// seed table of the tree and return the one minimizing the estimated
// partitioned size. The tree must be connected.
func FindOptimalPC(tree *graph.Graph, schema *catalog.Schema, sizes Sizes, hp *HistProvider, n int) (*PC, error) {
	sets := make([][]string, 0, tree.NumNodes())
	for _, node := range tree.Nodes() {
		sets = append(sets, []string{node})
	}
	return findBestPC(tree, sets, schema, sizes, hp, n, nil)
}

// findBestPC evaluates candidate seed sets and returns the PC with the
// minimum estimated size that satisfies the validity predicate (nil =
// always valid). Errors building individual candidates abort the search;
// an empty result yields an error.
func findBestPC(tree *graph.Graph, candidateSets [][]string, schema *catalog.Schema,
	sizes Sizes, hp *HistProvider, n int, valid func(*PC) bool) (*PC, error) {

	var best *PC
	bestSize := math.Inf(1)
	for _, seeds := range candidateSets {
		cfg, eco, err := BuildPC(tree, seeds, schema, n)
		if err != nil {
			return nil, err
		}
		est, err := EstimateConfig(cfg, sizes, hp)
		if err != nil {
			return nil, err
		}
		pc := &PC{Config: cfg, Est: est, Seeds: seeds, Eco: eco}
		if valid != nil && !valid(pc) {
			continue
		}
		if est.Total < bestSize {
			best, bestSize = pc, est.Total
		}
	}
	if best == nil {
		return nil, fmt.Errorf("design: no valid partitioning configuration found")
	}
	return best, nil
}

// FindOptimalPCConstrained extends the enumeration per Section 3.4: it
// searches seed sets of increasing size k and returns the first k's best
// configuration whose no-redundancy constraints hold. Data-locality is
// monotonically non-increasing in k, so stopping at the smallest feasible
// k yields the maximal-locality configuration satisfying the constraints.
func FindOptimalPCConstrained(tree *graph.Graph, schema *catalog.Schema, sizes Sizes,
	hp *HistProvider, n int, noRedundancy []string, maxSeeds int) (*PC, error) {

	nodes := tree.Nodes()
	if maxSeeds <= 0 || maxSeeds > len(nodes) {
		maxSeeds = len(nodes)
	}
	noRed := map[string]bool{}
	for _, t := range noRedundancy {
		if tree.HasNode(t) {
			noRed[t] = true
		}
	}
	const eps = 1e-6
	valid := func(pc *PC) bool {
		for t := range noRed {
			if pc.Est.PerTable[t] > float64(sizes[t])*(1+eps) {
				return false
			}
		}
		return true
	}

	// Safety valve for very wide schemas: cap the number of seed sets
	// evaluated per k. In practice constraints are satisfied at small k
	// (TPC-H needs k=2), far below the cap.
	const maxSetsPerK = 20000
	for k := 1; k <= maxSeeds; k++ {
		var sets [][]string
		combinations(nodes, k, func(set []string) {
			if len(sets) < maxSetsPerK {
				sets = append(sets, append([]string(nil), set...))
			}
		})
		best, err := findBestPC(tree, sets, schema, sizes, hp, n, valid)
		if err == nil {
			// Among same-k candidates, prefer higher locality, then size.
			// findBestPC already minimized size; recheck locality among
			// minimal sizes is subsumed because all k-seed configs on a
			// tree cut exactly k−1 edges only when seeds split regions —
			// we select max-DL via a second pass.
			best = refineForLocality(tree, sets, schema, sizes, hp, n, valid, best)
			return best, nil
		}
	}
	return nil, fmt.Errorf("design: constraints unsatisfiable with up to %d seeds", maxSeeds)
}

// refineForLocality re-evaluates the candidate sets preferring (1) maximal
// kept co-partitioning weight, (2) minimal estimated size.
func refineForLocality(tree *graph.Graph, sets [][]string, schema *catalog.Schema,
	sizes Sizes, hp *HistProvider, n int, valid func(*PC) bool, fallback *PC) *PC {

	best := fallback
	bestW := int64(-1)
	bestSize := math.Inf(1)
	for _, seeds := range sets {
		cfg, eco, err := BuildPC(tree, seeds, schema, n)
		if err != nil {
			continue
		}
		est, err := EstimateConfig(cfg, sizes, hp)
		if err != nil {
			continue
		}
		pc := &PC{Config: cfg, Est: est, Seeds: seeds, Eco: eco}
		if valid != nil && !valid(pc) {
			continue
		}
		w := eco.TotalWeight()
		if w > bestW || (w == bestW && est.Total < bestSize) {
			best, bestW, bestSize = pc, w, est.Total
		}
	}
	return best
}

// combinations invokes fn with every k-subset of items (in lexicographic
// order). fn must copy the slice if it retains it.
func combinations(items []string, k int, fn func([]string)) {
	if k <= 0 || k > len(items) {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	buf := make([]string, k)
	for {
		for i, j := range idx {
			buf[i] = items[j]
		}
		fn(buf)
		// advance
		i := k - 1
		for i >= 0 && idx[i] == len(items)-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// mergePCs combines per-component PCs into one config/estimate/eco triple.
func mergePCs(n int, pcs []*PC) *PC {
	cfg := partition.NewConfig(n)
	eco := graph.New()
	est := &Estimate{PerTable: map[string]float64{}}
	var seeds []string
	for _, pc := range pcs {
		for t, s := range pc.Config.Schemes {
			cfg.Schemes[t] = s
		}
		eco = eco.Union(pc.Eco)
		for t, v := range pc.Est.PerTable {
			est.PerTable[t] = v
		}
		est.Total += pc.Est.Total
		est.OriginalTotal += pc.Est.OriginalTotal
		seeds = append(seeds, pc.Seeds...)
	}
	sort.Strings(seeds)
	return &PC{Config: cfg, Est: est, Seeds: seeds, Eco: eco}
}
