package tpch

import (
	"fmt"

	"pref/internal/plan"
	"pref/internal/value"
)

// QueryNames lists the 22 TPC-H queries in order.
var QueryNames = []string{
	"Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q9", "Q10", "Q11",
	"Q12", "Q13", "Q14", "Q15", "Q16", "Q17", "Q18", "Q19", "Q20", "Q21", "Q22",
}

// Query builds a fresh logical plan for the named TPC-H query. It panics
// on an unknown name: callers pass source-literal names (tests, benches);
// fallible paths with user-supplied names must use QueryErr.
func (t *TPCH) Query(name string) plan.Node {
	q, err := t.QueryErr(name)
	if err != nil {
		// lint:invariant
		panic(err.Error())
	}
	return q
}

// QueryErr builds a fresh logical plan for the named TPC-H query,
// returning an error on an unknown name. The plans preserve the exact
// join graphs of the official queries; scalar subqueries are flattened
// into SPJA blocks (see the package comment).
func (t *TPCH) QueryErr(name string) (plan.Node, error) {
	switch name {
	case "Q1":
		return t.q1(), nil
	case "Q2":
		return t.q2(), nil
	case "Q3":
		return t.q3(), nil
	case "Q4":
		return t.q4(), nil
	case "Q5":
		return t.q5(), nil
	case "Q6":
		return t.q6(), nil
	case "Q7":
		return t.q7(), nil
	case "Q8":
		return t.q8(), nil
	case "Q9":
		return t.q9(), nil
	case "Q10":
		return t.q10(), nil
	case "Q11":
		return t.q11(), nil
	case "Q12":
		return t.q12(), nil
	case "Q13":
		return t.q13(), nil
	case "Q14":
		return t.q14(), nil
	case "Q15":
		return t.q15(), nil
	case "Q16":
		return t.q16(), nil
	case "Q17":
		return t.q17(), nil
	case "Q18":
		return t.q18(), nil
	case "Q19":
		return t.q19(), nil
	case "Q20":
		return t.q20(), nil
	case "Q21":
		return t.q21(), nil
	case "Q22":
		return t.q22(), nil
	default:
		return nil, fmt.Errorf("tpch: unknown query %q", name)
	}
}

// revenue is extendedprice · (1 − discount/100).
func revenue(alias string) plan.ValExpr {
	return plan.F("revenue", value.Money,
		[]string{alias + ".extendedprice", alias + ".discount"},
		func(v []int64) int64 { return v[0] * (100 - v[1]) / 100 })
}

// charge is extendedprice · (1 − discount/100) · (1 + tax/100).
func charge(alias string) plan.ValExpr {
	return plan.F("charge", value.Money,
		[]string{alias + ".extendedprice", alias + ".discount", alias + ".tax"},
		func(v []int64) int64 { return v[0] * (100 - v[1]) / 100 * (100 + v[2]) / 100 })
}

// yearOf extracts the calendar year from a date column.
func yearOf(col string) plan.ValExpr {
	return plan.F("year", value.Int, []string{col},
		func(v []int64) int64 { return int64(value.ToDate(v[0]).Year()) })
}

// Q1: pricing summary report (single-table aggregation).
func (t *TPCH) q1() plan.Node {
	l := plan.Filter(plan.Scan("lineitem", "l"),
		plan.Le(plan.Col("l.shipdate"), plan.DateLit(1998, 9, 2)))
	return plan.Aggregate(l, []string{"l.returnflag", "l.linestatus"},
		plan.Sum(plan.Col("l.quantity"), "sum_qty"),
		plan.Sum(plan.Col("l.extendedprice"), "sum_base_price"),
		plan.Sum(revenue("l"), "sum_disc_price"),
		plan.Sum(charge("l"), "sum_charge"),
		plan.Avg(plan.Col("l.quantity"), "avg_qty"),
		plan.Avg(plan.Col("l.extendedprice"), "avg_price"),
		plan.Count("count_order"),
	)
}

// Q2: minimum-cost supplier (part⋈partsupp⋈supplier⋈nation⋈region; the
// correlated min-supplycost subquery is flattened to a grouped MIN).
func (t *TPCH) q2() plan.Node {
	// The official predicate is size = 15 AND type LIKE '%BRASS'; the
	// range form keeps the query selective but non-empty at reduced SF.
	p := plan.Filter(plan.Scan("part", "p"), plan.Le(plan.Col("p.size"), plan.Lit(15)))
	pps := plan.Join(p, plan.Scan("partsupp", "ps"), plan.Inner,
		[]string{"p.partkey"}, []string{"ps.partkey"})
	ppss := plan.Join(pps, plan.Scan("supplier", "s"), plan.Inner,
		[]string{"ps.suppkey"}, []string{"s.suppkey"})
	n := plan.Join(ppss, plan.Scan("nation", "n"), plan.Inner,
		[]string{"s.nationkey"}, []string{"n.nationkey"})
	r := plan.Join(n, plan.Filter(plan.Scan("region", "r"),
		plan.Eq(plan.Col("r.name"), plan.Lit(t.Code("region", "name", "EUROPE")))),
		plan.Inner, []string{"n.regionkey"}, []string{"r.regionkey"})
	return plan.Aggregate(r, []string{"p.partkey", "p.mfgr"},
		plan.Min(plan.Col("ps.supplycost"), "min_cost"))
}

// Q3: shipping priority.
func (t *TPCH) q3() plan.Node {
	c := plan.Filter(plan.Scan("customer", "c"),
		plan.Eq(plan.Col("c.mktsegment"), plan.Lit(t.Code("customer", "mktsegment", "BUILDING"))))
	o := plan.Filter(plan.Scan("orders", "o"),
		plan.Lt(plan.Col("o.orderdate"), plan.DateLit(1995, 3, 15)))
	co := plan.Join(c, o, plan.Inner, []string{"c.custkey"}, []string{"o.custkey"})
	l := plan.Filter(plan.Scan("lineitem", "l"),
		plan.Gt(plan.Col("l.shipdate"), plan.DateLit(1995, 3, 15)))
	col := plan.Join(co, l, plan.Inner, []string{"o.orderkey"}, []string{"l.orderkey"})
	return plan.Aggregate(col, []string{"l.orderkey", "o.orderdate", "o.shippriority"},
		plan.Sum(revenue("l"), "revenue"))
}

// Q4: order priority checking — a semi join of orders against late
// lineitems (EXISTS subquery).
func (t *TPCH) q4() plan.Node {
	o := plan.Filter(plan.Scan("orders", "o"), plan.And(
		plan.Ge(plan.Col("o.orderdate"), plan.DateLit(1993, 7, 1)),
		plan.Lt(plan.Col("o.orderdate"), plan.DateLit(1993, 10, 1)),
	))
	late := plan.Filter(plan.Scan("lineitem", "l"),
		plan.Cmp(plan.Col("l.commitdate"), plan.LT, plan.Col("l.receiptdate")))
	semi := plan.Join(o, late, plan.Semi, []string{"o.orderkey"}, []string{"l.orderkey"})
	return plan.Aggregate(semi, []string{"o.orderpriority"}, plan.Count("order_count"))
}

// Q5: local supplier volume — six-way join with the extra
// c_nationkey = s_nationkey condition as a residual predicate.
func (t *TPCH) q5() plan.Node {
	o := plan.Filter(plan.Scan("orders", "o"), plan.And(
		plan.Ge(plan.Col("o.orderdate"), plan.DateLit(1994, 1, 1)),
		plan.Lt(plan.Col("o.orderdate"), plan.DateLit(1995, 1, 1)),
	))
	co := plan.Join(plan.Scan("customer", "c"), o, plan.Inner,
		[]string{"c.custkey"}, []string{"o.custkey"})
	col := plan.Join(co, plan.Scan("lineitem", "l"), plan.Inner,
		[]string{"o.orderkey"}, []string{"l.orderkey"})
	cols := &plan.JoinNode{
		Left: col, Right: plan.Scan("supplier", "s"), Type: plan.Inner,
		LeftCols:  []string{"l.suppkey"},
		RightCols: []string{"s.suppkey"},
		Residual:  plan.Cmp(plan.Col("c.nationkey"), plan.EQ, plan.Col("s.nationkey")),
	}
	n := plan.Join(cols, plan.Scan("nation", "n"), plan.Inner,
		[]string{"s.nationkey"}, []string{"n.nationkey"})
	r := plan.Join(n, plan.Filter(plan.Scan("region", "r"),
		plan.Eq(plan.Col("r.name"), plan.Lit(t.Code("region", "name", "ASIA")))),
		plan.Inner, []string{"n.regionkey"}, []string{"r.regionkey"})
	return plan.Aggregate(r, []string{"n.name"}, plan.Sum(revenue("l"), "revenue"))
}

// Q6: forecasting revenue change (single-table global aggregation).
func (t *TPCH) q6() plan.Node {
	l := plan.Filter(plan.Scan("lineitem", "l"), plan.And(
		plan.Ge(plan.Col("l.shipdate"), plan.DateLit(1994, 1, 1)),
		plan.Lt(plan.Col("l.shipdate"), plan.DateLit(1995, 1, 1)),
		plan.Ge(plan.Col("l.discount"), plan.Lit(5)),
		plan.Le(plan.Col("l.discount"), plan.Lit(7)),
		plan.Lt(plan.Col("l.quantity"), plan.Lit(24)),
	))
	rev := plan.F("disc_rev", value.Money,
		[]string{"l.extendedprice", "l.discount"},
		func(v []int64) int64 { return v[0] * v[1] / 100 })
	return plan.Aggregate(l, nil, plan.Sum(rev, "revenue"))
}

// Q7: volume shipping between two nations (supplier/customer nation pair).
func (t *TPCH) q7() plan.Node {
	sl := plan.Join(plan.Scan("supplier", "s"), plan.Filter(plan.Scan("lineitem", "l"), plan.And(
		plan.Ge(plan.Col("l.shipdate"), plan.DateLit(1995, 1, 1)),
		plan.Le(plan.Col("l.shipdate"), plan.DateLit(1996, 12, 31)),
	)), plan.Inner, []string{"s.suppkey"}, []string{"l.suppkey"})
	slo := plan.Join(sl, plan.Scan("orders", "o"), plan.Inner,
		[]string{"l.orderkey"}, []string{"o.orderkey"})
	sloc := plan.Join(slo, plan.Scan("customer", "c"), plan.Inner,
		[]string{"o.custkey"}, []string{"c.custkey"})
	n1 := plan.Join(sloc, plan.Scan("nation", "n1"), plan.Inner,
		[]string{"s.nationkey"}, []string{"n1.nationkey"})
	// The official pair filter names FRANCE/GERMANY; at reduced SF that
	// pair is often empty, so the structurally identical "supplier nation
	// group vs. customer nation group" pair filter is used instead.
	n2 := &plan.JoinNode{
		Left: n1, Right: plan.Scan("nation", "n2"), Type: plan.Inner,
		LeftCols:  []string{"c.nationkey"},
		RightCols: []string{"n2.nationkey"},
		Residual: plan.Or(
			plan.And(plan.Lt(plan.Col("n1.nationkey"), plan.Lit(12)), plan.Ge(plan.Col("n2.nationkey"), plan.Lit(12))),
			plan.And(plan.Ge(plan.Col("n1.nationkey"), plan.Lit(12)), plan.Lt(plan.Col("n2.nationkey"), plan.Lit(12))),
		),
	}
	withYear := plan.Project(n2,
		[]string{"n1.name", "n2.name", "l_year", "volume"},
		[]plan.ValExpr{plan.Col("n1.name"), plan.Col("n2.name"), yearOf("l.shipdate"), revenue("l")})
	return plan.Aggregate(withYear, []string{"n1.name", "n2.name", "l_year"},
		plan.Sum(plan.Col("volume"), "revenue"))
}

// Q8: national market share.
func (t *TPCH) q8() plan.Node {
	p := plan.Filter(plan.Scan("part", "p"),
		plan.Eq(plan.Col("p.type"), plan.Lit(t.Code("part", "type", "ECONOMY ANODIZED STEEL"))))
	pl := plan.Join(p, plan.Scan("lineitem", "l"), plan.Inner,
		[]string{"p.partkey"}, []string{"l.partkey"})
	pls := plan.Join(pl, plan.Scan("supplier", "s"), plan.Inner,
		[]string{"l.suppkey"}, []string{"s.suppkey"})
	plso := plan.Join(pls, plan.Filter(plan.Scan("orders", "o"), plan.And(
		plan.Ge(plan.Col("o.orderdate"), plan.DateLit(1995, 1, 1)),
		plan.Le(plan.Col("o.orderdate"), plan.DateLit(1996, 12, 31)),
	)), plan.Inner, []string{"l.orderkey"}, []string{"o.orderkey"})
	plsoc := plan.Join(plso, plan.Scan("customer", "c"), plan.Inner,
		[]string{"o.custkey"}, []string{"c.custkey"})
	n1 := plan.Join(plsoc, plan.Scan("nation", "n1"), plan.Inner,
		[]string{"c.nationkey"}, []string{"n1.nationkey"})
	r := plan.Join(n1, plan.Filter(plan.Scan("region", "r"),
		plan.Eq(plan.Col("r.name"), plan.Lit(t.Code("region", "name", "AMERICA")))),
		plan.Inner, []string{"n1.regionkey"}, []string{"r.regionkey"})
	n2 := plan.Join(r, plan.Scan("nation", "n2"), plan.Inner,
		[]string{"s.nationkey"}, []string{"n2.nationkey"})
	withYear := plan.Project(n2,
		[]string{"o_year", "n2.name", "volume"},
		[]plan.ValExpr{yearOf("o.orderdate"), plan.Col("n2.name"), revenue("l")})
	return plan.Aggregate(withYear, []string{"o_year", "n2.name"},
		plan.Sum(plan.Col("volume"), "volume"))
}

// Q9: product type profit measure — the widest join tree (6 tables).
// Joins are ordered along the foreign-key chains (lineitem→partsupp→part,
// lineitem→orders), the order a locality-aware optimizer picks: under the
// PREF designs every one of these joins is co-located.
func (t *TPCH) q9() plan.Node {
	lps := plan.Join(plan.Scan("lineitem", "l"), plan.Scan("partsupp", "ps"), plan.Inner,
		[]string{"l.partkey", "l.suppkey"}, []string{"ps.partkey", "ps.suppkey"})
	pl := plan.Join(lps, plan.Scan("part", "p"), plan.Inner,
		[]string{"ps.partkey"}, []string{"p.partkey"})
	plso := plan.Join(pl, plan.Scan("orders", "o"), plan.Inner,
		[]string{"l.orderkey"}, []string{"o.orderkey"})
	pls := plan.Join(plso, plan.Scan("supplier", "s"), plan.Inner,
		[]string{"l.suppkey"}, []string{"s.suppkey"})
	n := plan.Join(pls, plan.Scan("nation", "n"), plan.Inner,
		[]string{"s.nationkey"}, []string{"n.nationkey"})
	amount := plan.F("amount", value.Money,
		[]string{"l.extendedprice", "l.discount", "ps.supplycost", "l.quantity"},
		func(v []int64) int64 { return v[0]*(100-v[1])/100 - v[2]*v[3] })
	withYear := plan.Project(n,
		[]string{"n.name", "o_year", "amount"},
		[]plan.ValExpr{plan.Col("n.name"), yearOf("o.orderdate"), amount})
	return plan.Aggregate(withYear, []string{"n.name", "o_year"},
		plan.Sum(plan.Col("amount"), "sum_profit"))
}

// Q10: returned item reporting.
func (t *TPCH) q10() plan.Node {
	o := plan.Filter(plan.Scan("orders", "o"), plan.And(
		plan.Ge(plan.Col("o.orderdate"), plan.DateLit(1993, 10, 1)),
		plan.Lt(plan.Col("o.orderdate"), plan.DateLit(1994, 1, 1)),
	))
	co := plan.Join(plan.Scan("customer", "c"), o, plan.Inner,
		[]string{"c.custkey"}, []string{"o.custkey"})
	l := plan.Filter(plan.Scan("lineitem", "l"),
		plan.Eq(plan.Col("l.returnflag"), plan.Lit(t.Code("lineitem", "returnflag", "R"))))
	col := plan.Join(co, l, plan.Inner, []string{"o.orderkey"}, []string{"l.orderkey"})
	n := plan.Join(col, plan.Scan("nation", "n"), plan.Inner,
		[]string{"c.nationkey"}, []string{"n.nationkey"})
	return plan.Aggregate(n, []string{"c.custkey", "c.name", "c.acctbal", "n.name"},
		plan.Sum(revenue("l"), "revenue"))
}

// Q11: important stock identification.
func (t *TPCH) q11() plan.Node {
	s := plan.Join(plan.Scan("partsupp", "ps"), plan.Scan("supplier", "s"), plan.Inner,
		[]string{"ps.suppkey"}, []string{"s.suppkey"})
	n := plan.Join(s, plan.Filter(plan.Scan("nation", "n"), plan.In("n.name",
		t.Code("nation", "name", "GERMANY"),
		t.Code("nation", "name", "FRANCE"),
		t.Code("nation", "name", "CHINA"),
		t.Code("nation", "name", "CANADA"))),
		plan.Inner, []string{"s.nationkey"}, []string{"n.nationkey"})
	val := plan.F("val", value.Money,
		[]string{"ps.supplycost", "ps.availqty"},
		func(v []int64) int64 { return v[0] * v[1] })
	proj := plan.Project(n, []string{"ps.partkey", "val"},
		[]plan.ValExpr{plan.Col("ps.partkey"), val})
	return plan.Aggregate(proj, []string{"ps.partkey"}, plan.Sum(plan.Col("val"), "value"))
}

// Q12: shipping modes and order priority (case-when as 0/1 measures).
func (t *TPCH) q12() plan.Node {
	l := plan.Filter(plan.Scan("lineitem", "l"), plan.And(
		plan.In("l.shipmode",
			t.Code("lineitem", "shipmode", "MAIL"),
			t.Code("lineitem", "shipmode", "SHIP")),
		plan.Cmp(plan.Col("l.commitdate"), plan.LT, plan.Col("l.receiptdate")),
		plan.Cmp(plan.Col("l.shipdate"), plan.LT, plan.Col("l.commitdate")),
		plan.Ge(plan.Col("l.receiptdate"), plan.DateLit(1994, 1, 1)),
		plan.Lt(plan.Col("l.receiptdate"), plan.DateLit(1995, 1, 1)),
	))
	ol := plan.Join(plan.Scan("orders", "o"), l, plan.Inner,
		[]string{"o.orderkey"}, []string{"l.orderkey"})
	urgent := t.Code("orders", "orderpriority", "1-URGENT")
	high := t.Code("orders", "orderpriority", "2-HIGH")
	highLine := plan.F("high", value.Int, []string{"o.orderpriority"},
		func(v []int64) int64 {
			if v[0] == urgent || v[0] == high {
				return 1
			}
			return 0
		})
	lowLine := plan.F("low", value.Int, []string{"o.orderpriority"},
		func(v []int64) int64 {
			if v[0] == urgent || v[0] == high {
				return 0
			}
			return 1
		})
	return plan.Aggregate(ol, []string{"l.shipmode"},
		plan.Sum(highLine, "high_line_count"),
		plan.Sum(lowLine, "low_line_count"))
}

// Q13: customer distribution — left outer join plus a second aggregation
// level (customers grouped by their order count).
func (t *TPCH) q13() plan.Node {
	o := plan.Filter(plan.Scan("orders", "o"),
		plan.Ne(plan.Col("o.comment"), plan.Lit(t.Code("orders", "comment", "special requests order"))))
	j := plan.Join(plan.Scan("customer", "c"), o, plan.LeftOuter,
		[]string{"c.custkey"}, []string{"o.custkey"})
	perCust := plan.Aggregate(j, []string{"c.custkey"},
		plan.CountCol(plan.Col("o.orderkey"), "c_count"))
	return plan.Aggregate(perCust, []string{"c_count"}, plan.Count("custdist"))
}

// Q14: promotion effect — ratio of two sums over the same join.
func (t *TPCH) q14() plan.Node {
	l := plan.Filter(plan.Scan("lineitem", "l"), plan.And(
		plan.Ge(plan.Col("l.shipdate"), plan.DateLit(1995, 9, 1)),
		plan.Lt(plan.Col("l.shipdate"), plan.DateLit(1995, 10, 1)),
	))
	lp := plan.Join(l, plan.Scan("part", "p"), plan.Inner,
		[]string{"l.partkey"}, []string{"p.partkey"})
	promo := map[int64]bool{}
	for _, ty := range []string{"PROMO ANODIZED TIN", "PROMO BURNISHED COPPER", "PROMO PLATED STEEL"} {
		promo[t.Code("part", "type", ty)] = true
	}
	promoRev := plan.F("promo_rev", value.Money,
		[]string{"p.type", "l.extendedprice", "l.discount"},
		func(v []int64) int64 {
			if promo[v[0]] {
				return v[1] * (100 - v[2]) / 100
			}
			return 0
		})
	agg := plan.Aggregate(lp, nil,
		plan.Sum(promoRev, "promo"),
		plan.Sum(revenue("l"), "total"))
	ratio := plan.F("promo_pct", value.Float, []string{"promo", "total"},
		func(v []int64) int64 {
			if v[1] == 0 {
				return value.FromFloat(0)
			}
			return value.FromFloat(100 * float64(v[0]) / float64(v[1]))
		})
	return plan.Project(agg, []string{"promo_revenue"}, []plan.ValExpr{ratio})
}

// Q15: top supplier — revenue view (grouped lineitem) joined to supplier.
func (t *TPCH) q15() plan.Node {
	l := plan.Filter(plan.Scan("lineitem", "l"), plan.And(
		plan.Ge(plan.Col("l.shipdate"), plan.DateLit(1996, 1, 1)),
		plan.Lt(plan.Col("l.shipdate"), plan.DateLit(1996, 4, 1)),
	))
	rev := plan.Aggregate(l, []string{"l.suppkey"}, plan.Sum(revenue("l"), "total_revenue"))
	j := plan.Join(plan.Scan("supplier", "s"), rev, plan.Inner,
		[]string{"s.suppkey"}, []string{"l.suppkey"})
	return plan.Aggregate(j, nil, plan.Max(plan.Col("total_revenue"), "max_revenue"))
}

// Q16: parts/supplier relationship — anti join against complained-about
// suppliers.
func (t *TPCH) q16() plan.Node {
	p := plan.Filter(plan.Scan("part", "p"), plan.And(
		plan.Ne(plan.Col("p.brand"), plan.Lit(t.Code("part", "brand", "Brand#45"))),
		plan.In("p.size", 1, 4, 7, 14, 23, 36, 45, 49, 3, 9, 19),
	))
	psp := plan.Join(plan.Scan("partsupp", "ps"), p, plan.Inner,
		[]string{"ps.partkey"}, []string{"p.partkey"})
	bad := plan.Filter(plan.Scan("supplier", "s"),
		plan.Eq(plan.Col("s.comment"), plan.Lit(t.Code("supplier", "comment", "Customer Complaints supplier"))))
	anti := plan.Join(psp, bad, plan.Anti, []string{"ps.suppkey"}, []string{"s.suppkey"})
	return plan.Aggregate(anti, []string{"p.brand", "p.type", "p.size"},
		plan.CountDistinct(plan.Col("ps.suppkey"), "supplier_cnt"))
}

// Q17: small-quantity-order revenue (avg-quantity subquery flattened to a
// constant threshold, as the paper's SPJA rewrite requires).
func (t *TPCH) q17() plan.Node {
	p := plan.Filter(plan.Scan("part", "p"), plan.And(
		plan.Eq(plan.Col("p.brand"), plan.Lit(t.Code("part", "brand", "Brand#23"))),
		plan.Eq(plan.Col("p.container"), plan.Lit(t.Code("part", "container", "MED BOX"))),
	))
	lp := plan.Join(plan.Scan("lineitem", "l"), p, plan.Inner,
		[]string{"l.partkey"}, []string{"p.partkey"})
	small := plan.Filter(lp, plan.Lt(plan.Col("l.quantity"), plan.Lit(5)))
	agg := plan.Aggregate(small, nil, plan.Sum(plan.Col("l.extendedprice"), "total"))
	avgYearly := plan.F("avg_yearly", value.Float, []string{"total"},
		func(v []int64) int64 {
			if v[0] == plan.Null {
				return value.FromFloat(0)
			}
			return value.FromFloat(float64(v[0]) / 7)
		})
	return plan.Project(agg, []string{"avg_yearly"}, []plan.ValExpr{avgYearly})
}

// Q18: large volume customer — aggregation with HAVING.
func (t *TPCH) q18() plan.Node {
	co := plan.Join(plan.Scan("customer", "c"), plan.Scan("orders", "o"), plan.Inner,
		[]string{"c.custkey"}, []string{"o.custkey"})
	col := plan.Join(co, plan.Scan("lineitem", "l"), plan.Inner,
		[]string{"o.orderkey"}, []string{"l.orderkey"})
	agg := plan.Aggregate(col, []string{"c.name", "c.custkey", "o.orderkey", "o.orderdate", "o.totalprice"},
		plan.Sum(plan.Col("l.quantity"), "sum_qty"))
	return plan.Filter(agg, plan.Gt(plan.Col("sum_qty"), plan.Lit(160)))
}

// Q19: discounted revenue — equi join on partkey with a disjunctive
// residual over brands/containers/quantities.
func (t *TPCH) q19() plan.Node {
	cond := func(brand string, contA, contB string, qlo, qhi int64) plan.BoolExpr {
		return plan.And(
			plan.Eq(plan.Col("p.brand"), plan.Lit(t.Code("part", "brand", brand))),
			plan.Or(
				plan.Eq(plan.Col("p.container"), plan.Lit(t.Code("part", "container", contA))),
				plan.Eq(plan.Col("p.container"), plan.Lit(t.Code("part", "container", contB))),
			),
			plan.Ge(plan.Col("l.quantity"), plan.Lit(qlo)),
			plan.Le(plan.Col("l.quantity"), plan.Lit(qhi)),
			plan.Le(plan.Col("p.size"), plan.Lit(15)),
		)
	}
	j := &plan.JoinNode{
		Left: plan.Scan("lineitem", "l"), Right: plan.Scan("part", "p"),
		Type:      plan.Inner,
		LeftCols:  []string{"l.partkey"},
		RightCols: []string{"p.partkey"},
		Residual: plan.Or(
			cond("Brand#12", "SM CASE", "SM BOX", 1, 11),
			cond("Brand#23", "MED BAG", "MED BOX", 10, 20),
			cond("Brand#33", "LG CASE", "LG BOX", 20, 30),
		),
	}
	return plan.Aggregate(j, nil, plan.Sum(revenue("l"), "revenue"))
}

// Q20: potential part promotion — nested semi joins.
func (t *TPCH) q20() plan.Node {
	ps := plan.Filter(plan.Scan("partsupp", "ps"), plan.Gt(plan.Col("ps.availqty"), plan.Lit(100)))
	sps := plan.Join(plan.Scan("supplier", "s"), ps, plan.Semi,
		[]string{"s.suppkey"}, []string{"ps.suppkey"})
	n := plan.Join(sps, plan.Filter(plan.Scan("nation", "n"),
		plan.Eq(plan.Col("n.name"), plan.Lit(t.Code("nation", "name", "CANADA")))),
		plan.Inner, []string{"s.nationkey"}, []string{"n.nationkey"})
	return plan.Aggregate(n, nil, plan.Count("supplier_count"))
}

// Q21: suppliers who kept orders waiting — self joins on lineitem with a
// semi (exists) and an anti (not exists) block.
func (t *TPCH) q21() plan.Node {
	l1 := plan.Filter(plan.Scan("lineitem", "l1"),
		plan.Cmp(plan.Col("l1.receiptdate"), plan.GT, plan.Col("l1.commitdate")))
	sl := plan.Join(plan.Scan("supplier", "s"), l1, plan.Inner,
		[]string{"s.suppkey"}, []string{"l1.suppkey"})
	o := plan.Filter(plan.Scan("orders", "o"),
		plan.Eq(plan.Col("o.orderstatus"), plan.Lit(t.Code("orders", "orderstatus", "F"))))
	slo := plan.Join(sl, o, plan.Inner, []string{"l1.orderkey"}, []string{"o.orderkey"})
	// exists another lineitem of the same order from a different supplier
	// (joined through o.orderkey — equal to l1.orderkey in this result —
	// so the locality of the lineitem-orders chain is visible).
	exists := &plan.JoinNode{
		Left: slo, Right: plan.Scan("lineitem", "l2"), Type: plan.Semi,
		LeftCols:  []string{"o.orderkey"},
		RightCols: []string{"l2.orderkey"},
		Residual:  plan.Cmp(plan.Col("l2.suppkey"), plan.NE, plan.Col("l1.suppkey")),
	}
	// and no other supplier was also late on it
	late := plan.Filter(plan.Scan("lineitem", "l3"),
		plan.Cmp(plan.Col("l3.receiptdate"), plan.GT, plan.Col("l3.commitdate")))
	notExists := &plan.JoinNode{
		Left: exists, Right: late, Type: plan.Anti,
		LeftCols:  []string{"o.orderkey"},
		RightCols: []string{"l3.orderkey"},
		Residual:  plan.Cmp(plan.Col("l3.suppkey"), plan.NE, plan.Col("l1.suppkey")),
	}
	n := plan.Join(notExists, plan.Filter(plan.Scan("nation", "n"),
		plan.Eq(plan.Col("n.name"), plan.Lit(t.Code("nation", "name", "SAUDI ARABIA")))),
		plan.Inner, []string{"s.nationkey"}, []string{"n.nationkey"})
	return plan.Aggregate(n, []string{"s.name"}, plan.Count("numwait"))
}

// Q22: global sales opportunity — anti join of customers against orders.
func (t *TPCH) q22() plan.Node {
	c := plan.Filter(plan.Scan("customer", "c"), plan.And(
		plan.In("c.phonecc", 13, 31, 23, 29, 30, 18, 17),
		plan.Gt(plan.Col("c.acctbal"), plan.MoneyLit(0)),
	))
	anti := plan.Join(c, plan.Scan("orders", "o"), plan.Anti,
		[]string{"c.custkey"}, []string{"o.custkey"})
	return plan.Aggregate(anti, []string{"c.phonecc"},
		plan.Count("numcust"), plan.Sum(plan.Col("c.acctbal"), "totacctbal"))
}
