package tpch

// Plan-shape regression tests: under the paper's SD configuration the
// rewriter must keep the chain queries fully local (no exchanges), and
// must insert exchanges exactly where locality is impossible.

import (
	"strings"
	"testing"

	"pref/internal/engine"
	"pref/internal/partition"
	"pref/internal/plan"
)

// paperSD mirrors bench.PaperSDConfig (duplicated here to avoid an import
// cycle with the bench package).
func paperSD(n int) *partition.Config {
	cfg := partition.NewConfig(n)
	cfg.SetHash("lineitem", "orderkey")
	cfg.SetPref("orders", "lineitem", []string{"orderkey"}, []string{"orderkey"})
	cfg.SetPref("customer", "orders", []string{"custkey"}, []string{"custkey"})
	cfg.SetPref("partsupp", "lineitem", []string{"partkey", "suppkey"}, []string{"partkey", "suppkey"})
	cfg.SetPref("part", "partsupp", []string{"partkey"}, []string{"partkey"})
	for _, tbl := range []string{"supplier", "nation", "region"} {
		cfg.SetReplicated(tbl)
	}
	return cfg
}

func countExchanges(n plan.Node) (reparts, bcasts int) {
	switch n.(type) {
	case *plan.RepartitionNode, *plan.DistinctByValueNode:
		reparts++
	case *plan.BroadcastNode:
		bcasts++
	}
	for _, c := range n.Children() {
		r, b := countExchanges(c)
		reparts += r
		bcasts += b
	}
	return
}

func TestPlanShapesUnderPaperSD(t *testing.T) {
	d := Generate(0.002, 7)
	cfg := paperSD(10)

	cases := []struct {
		query       string
		maxReparts  int
		description string
	}{
		// Q4: o ⋉ σ(l) on orderkey — ORDERS is hash-equivalent, lineitem
		// is the hash seed: case (1) semi join, fully local; the group-by
		// on orderpriority is the only shuffle.
		{"Q4", 1, "semi join local; one group-by shuffle"},
		// Q9: l⋈ps⋈p⋈o⋈s⋈n all along chains — only the final group-by
		// (n.name, year) shuffles.
		{"Q9", 1, "chain joins local"},
		// Q3: joins local; group-by covers the orderkey hash column via
		// equivalences, so even the aggregation is local.
		{"Q3", 0, "fully local incl. aggregation"},
		// Q21: s⋈l1⋈o local; the exists/not-exists blocks join through
		// o.orderkey (referenced side on the left) — local and safe; only
		// the s.name group-by shuffles.
		{"Q21", 1, "self-join exists blocks local"},
		// Q13: customer ⟕ orders is local (right side is the referencing
		// bare-ish scan... the filtered right side forces a shuffle), and
		// the two aggregation levels shuffle.
		{"Q13", 3, "outer join with filtered right repartitions"},
	}
	for _, c := range cases {
		rw, err := plan.Rewrite(d.Query(c.query), d.DB.Schema, cfg, plan.Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.query, err)
		}
		reparts, _ := countExchanges(rw.Root)
		if reparts > c.maxReparts {
			t.Errorf("%s: %d repartitions, want ≤ %d (%s)\n%s",
				c.query, reparts, c.maxReparts, c.description, rw.Explain())
		}
	}
}

func TestQ4SemiJoinIsCase1Local(t *testing.T) {
	d := Generate(0.002, 7)
	rw, err := plan.Rewrite(d.Query("Q4"), d.DB.Schema, paperSD(10), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := rw.Explain()
	if !strings.Contains(out, "SEMIJoin") {
		t.Fatalf("Q4 should contain a semi join:\n%s", out)
	}
	// The semi join itself must not be preceded by a repartition of the
	// orders side (hash-equivalence makes it case 1).
	if strings.Count(out, "Repartition") > 1 {
		t.Fatalf("Q4 should shuffle only for the group-by:\n%s", out)
	}
}

func TestHasRefOptimizationAppliesOnPaperSD(t *testing.T) {
	d := Generate(0.002, 7)
	// customer ⋉ orders on the partitioning predicate → hasRef filter.
	q := plan.Join(plan.Scan("customer", "c"), plan.Scan("orders", "o"),
		plan.Semi, []string{"c.custkey"}, []string{"o.custkey"})
	rw, err := plan.Rewrite(q, d.DB.Schema, paperSD(10), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := rw.Explain()
	if !strings.Contains(out, "__hasref") {
		t.Fatalf("semi join against the referenced table should become a hasRef filter:\n%s", out)
	}
	if strings.Contains(out, "Join") {
		t.Fatalf("no join should remain:\n%s", out)
	}
}

// The same queries must also produce correct results under paper-SD
// (cross-checked against the single-node reference).
func TestPaperSDCorrectness(t *testing.T) {
	d := Generate(0.002, 7)
	ref := partition.NewConfig(1)
	for _, tbl := range d.DB.Schema.Tables() {
		ref.SetHash(tbl.Name, tbl.PK...)
	}
	cfgs := map[string]*partition.Config{"reference": ref, "paper-sd": paperSD(10)}
	for _, q := range QueryNames {
		results := map[string]int{}
		for name, cfg := range cfgs {
			pdb, err := partition.Apply(d.DB, cfg)
			if err != nil {
				t.Fatal(err)
			}
			rw, err := plan.Rewrite(d.Query(q), d.DB.Schema, cfg, plan.Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", q, name, err)
			}
			res, err := engine.Execute(rw, pdb)
			if err != nil {
				t.Fatalf("%s/%s: %v", q, name, err)
			}
			results[name] = len(res.Rows)
		}
		if results["reference"] != results["paper-sd"] {
			t.Errorf("%s: row counts diverge: %v", q, results)
		}
	}
}
