package tpch

import (
	"fmt"
	"math/rand"

	"pref/internal/table"
	"pref/internal/value"
)

// Cardinalities at scale factor 1, per the TPC-H specification.
const (
	sfSupplier = 10_000
	sfCustomer = 150_000
	sfPart     = 200_000
	sfOrders   = 1_500_000
)

// TPCH bundles a generated database with its scale factor.
type TPCH struct {
	DB *table.Database
	SF float64
}

var (
	regions  = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nations  = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
	segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	prios    = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	modes    = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	instr    = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	brands   = []string{"Brand#11", "Brand#12", "Brand#13", "Brand#21", "Brand#22", "Brand#23", "Brand#31", "Brand#32", "Brand#33", "Brand#41", "Brand#42", "Brand#43", "Brand#51", "Brand#52", "Brand#53"}
	types    = []string{"PROMO ANODIZED TIN", "PROMO BURNISHED COPPER", "PROMO PLATED STEEL", "ECONOMY ANODIZED STEEL", "ECONOMY BRUSHED NICKEL", "STANDARD POLISHED BRASS", "STANDARD PLATED TIN", "MEDIUM BURNISHED NICKEL", "MEDIUM PLATED COPPER", "LARGE BRUSHED BRASS", "LARGE POLISHED COPPER", "SMALL PLATED STEEL"}
	conts    = []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "JUMBO PACK", "WRAP JAR"}
)

// nations[i] belongs to region i%5, as in the dbgen seed data.

// Generate builds a deterministic TPC-H database at the given scale
// factor. SF 1 matches the official cardinalities; experiments here run
// at reduced SF with identical ratios, so locality/redundancy results are
// unchanged (they are scale-free).
func Generate(sf float64, seed int64) *TPCH {
	if sf <= 0 {
		sf = 0.001
	}
	rng := rand.New(rand.NewSource(seed))
	db := table.NewDatabase(Schema())

	nSupp := atLeast(4, sf*sfSupplier)
	nCust := atLeast(10, sf*sfCustomer)
	nPart := atLeast(8, sf*sfPart)
	nOrd := atLeast(20, sf*sfOrders)

	// region
	rt := db.Schema.Table("region")
	for i, name := range regions {
		db.Tables["region"].MustAppend(value.Tuple{
			int64(i), rt.Dict("name").Code(name), rt.Dict("comment").Code("region comment"),
		})
	}

	// nation: nation i in region i%5.
	nt := db.Schema.Table("nation")
	for i, name := range nations {
		db.Tables["nation"].MustAppend(value.Tuple{
			int64(i), nt.Dict("name").Code(name), int64(i % 5), nt.Dict("comment").Code("nation comment"),
		})
	}

	// supplier
	st := db.Schema.Table("supplier")
	for i := 0; i < nSupp; i++ {
		db.Tables["supplier"].MustAppend(value.Tuple{
			int64(i + 1),
			st.Dict("name").Code(fmt.Sprintf("Supplier#%09d", i+1)),
			st.Dict("address").Code(fmt.Sprintf("addr-s-%d", i+1)),
			int64(rng.Intn(25)),
			st.Dict("phone").Code(fmt.Sprintf("%d-555-%04d", 10+i%25, i%10000)),
			value.FromMoney(-999.99 + rng.Float64()*10998.98),
			st.Dict("comment").Code(suppComment(rng, i)),
		})
	}

	// customer: phone country code 10..34 (nationkey+10 per spec).
	ct := db.Schema.Table("customer")
	for i := 0; i < nCust; i++ {
		nk := int64(rng.Intn(25))
		db.Tables["customer"].MustAppend(value.Tuple{
			int64(i + 1),
			ct.Dict("name").Code(fmt.Sprintf("Customer#%09d", i+1)),
			ct.Dict("address").Code(fmt.Sprintf("addr-c-%d", i+1)),
			nk,
			ct.Dict("phone").Code(fmt.Sprintf("%d-555-%04d", nk+10, i%10000)),
			nk + 10,
			value.FromMoney(-999.99 + rng.Float64()*10998.98),
			ct.Dict("mktsegment").Code(segments[rng.Intn(len(segments))]),
			ct.Dict("comment").Code("customer comment"),
		})
	}

	// part
	pt := db.Schema.Table("part")
	for i := 0; i < nPart; i++ {
		db.Tables["part"].MustAppend(value.Tuple{
			int64(i + 1),
			pt.Dict("name").Code(fmt.Sprintf("part name %d", i+1)),
			pt.Dict("mfgr").Code(fmt.Sprintf("Manufacturer#%d", 1+i%5)),
			pt.Dict("brand").Code(brands[rng.Intn(len(brands))]),
			pt.Dict("type").Code(types[rng.Intn(len(types))]),
			int64(1 + rng.Intn(50)),
			pt.Dict("container").Code(conts[rng.Intn(len(conts))]),
			value.FromMoney(900 + float64(i%200)/10),
			pt.Dict("comment").Code("part comment"),
		})
	}

	// partsupp: 4 suppliers per part via the dbgen permutation so every
	// generated lineitem (partkey, suppkey) hits an existing partsupp row.
	pst := db.Schema.Table("partsupp")
	for p := 1; p <= nPart; p++ {
		for j := 0; j < 4; j++ {
			db.Tables["partsupp"].MustAppend(value.Tuple{
				int64(p), psSuppkey(p, j, nSupp),
				int64(1 + rng.Intn(9999)),
				value.FromMoney(1 + rng.Float64()*999),
				pst.Dict("comment").Code("partsupp comment"),
			})
		}
	}

	// orders + lineitem. Per the spec only two thirds of customers ever
	// place an order (custkey % 3 != 0 in our encoding).
	ot := db.Schema.Table("orders")
	lt := db.Schema.Table("lineitem")
	startDate := value.FromDate(1992, 1, 1)
	endDate := value.FromDate(1998, 8, 2)
	dateRange := endDate - startDate
	for o := 1; o <= nOrd; o++ {
		ck := int64(1 + rng.Intn(nCust))
		for ck%3 == 0 {
			ck = int64(1 + rng.Intn(nCust))
		}
		odate := startDate + rng.Int63n(dateRange)
		nLines := 1 + rng.Intn(7)
		var total int64
		for ln := 1; ln <= nLines; ln++ {
			pk := 1 + rng.Intn(nPart)
			sk := psSuppkey(pk, rng.Intn(4), nSupp)
			qty := int64(1 + rng.Intn(50))
			price := value.FromMoney(float64(qty) * (900 + float64(pk%200)/10) / 10)
			disc := int64(rng.Intn(11))
			tax := int64(rng.Intn(9))
			ship := odate + 1 + rng.Int63n(121)
			commit := odate + 30 + rng.Int63n(61)
			receipt := ship + 1 + rng.Int63n(30)
			rf := "N"
			if receipt <= value.FromDate(1995, 6, 17) {
				if rng.Intn(2) == 0 {
					rf = "R"
				} else {
					rf = "A"
				}
			}
			ls := "O"
			if ship <= value.FromDate(1995, 6, 17) {
				ls = "F"
			}
			db.Tables["lineitem"].MustAppend(value.Tuple{
				int64(o), int64(pk), sk, int64(ln), qty, price, disc, tax,
				lt.Dict("returnflag").Code(rf),
				lt.Dict("linestatus").Code(ls),
				ship, commit, receipt,
				lt.Dict("shipinstruct").Code(instr[rng.Intn(len(instr))]),
				lt.Dict("shipmode").Code(modes[rng.Intn(len(modes))]),
				lt.Dict("comment").Code("lineitem comment"),
			})
			total += price * (100 - disc) / 100
		}
		status := "O"
		if odate < value.FromDate(1995, 1, 1) {
			status = "F"
		}
		db.Tables["orders"].MustAppend(value.Tuple{
			int64(o), ck,
			ot.Dict("orderstatus").Code(status),
			total,
			odate,
			ot.Dict("orderpriority").Code(prios[rng.Intn(len(prios))]),
			ot.Dict("clerk").Code(fmt.Sprintf("Clerk#%09d", 1+rng.Intn(1000))),
			0,
			ot.Dict("comment").Code(orderComment(rng)),
		})
	}
	return &TPCH{DB: db, SF: sf}
}

// psSuppkey is dbgen's part→supplier permutation: supplier j of part p.
func psSuppkey(p, j, nSupp int) int64 {
	return int64((p+j*(nSupp/4+(p-1)/nSupp))%nSupp + 1)
}

// suppComment plants the Q16 "Customer Complaints" marker in a fixed
// fraction of supplier comments, as dbgen does.
func suppComment(rng *rand.Rand, i int) string {
	if i%200 == 7 {
		return "Customer Complaints supplier"
	}
	return "supplier comment"
}

// orderComment plants the Q13 "special requests" marker in a fraction of
// order comments.
func orderComment(rng *rand.Rand) string {
	if rng.Intn(100) < 2 {
		return "special requests order"
	}
	return "order comment"
}

func atLeast(min int, v float64) int {
	n := int(v)
	if n < min {
		return min
	}
	return n
}

// Code looks up the dictionary code of a string constant for a column;
// it panics if the constant was never generated (a query-construction
// bug at experiment scale).
func (t *TPCH) Code(tbl, col, s string) int64 {
	d := t.DB.Schema.Table(tbl).Dict(col)
	if c, ok := d.Lookup(s); ok {
		return c
	}
	// Unseen constants get a fresh code: predicates simply match nothing,
	// mirroring a constant absent from the generated data.
	return d.Code(s)
}
