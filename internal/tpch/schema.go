// Package tpch is a from-scratch TPC-H substrate: the full 8-table schema
// with referential constraints, a deterministic scale-factor generator
// with dbgen-compatible cardinality ratios and key distributions, all 22
// benchmark queries as executable SPJA plans, and the workload join-graph
// specs consumed by the workload-driven design algorithm.
//
// Deviations from the official kit (documented in DESIGN.md): string
// columns are dictionary-encoded; ORDER BY/LIMIT clauses are dropped
// (they do not affect the partitioning behaviour the paper measures);
// correlated subqueries are flattened into structurally equivalent SPJA
// blocks; and customer carries an explicit phone country-code column so
// Q22's substring predicate stays a plain column filter.
package tpch

import (
	"pref/internal/catalog"
	"pref/internal/value"
)

// Schema returns the TPC-H schema with all referential constraints.
func Schema() *catalog.Schema {
	s := catalog.NewSchema("tpch")

	s.MustAddTable(catalog.MustTable("region", []catalog.Column{
		{Name: "regionkey", Kind: value.Int},
		{Name: "name", Kind: value.Str},
		{Name: "comment", Kind: value.Str},
	}, "regionkey"))

	s.MustAddTable(catalog.MustTable("nation", []catalog.Column{
		{Name: "nationkey", Kind: value.Int},
		{Name: "name", Kind: value.Str},
		{Name: "regionkey", Kind: value.Int},
		{Name: "comment", Kind: value.Str},
	}, "nationkey"))

	s.MustAddTable(catalog.MustTable("supplier", []catalog.Column{
		{Name: "suppkey", Kind: value.Int},
		{Name: "name", Kind: value.Str},
		{Name: "address", Kind: value.Str},
		{Name: "nationkey", Kind: value.Int},
		{Name: "phone", Kind: value.Str},
		{Name: "acctbal", Kind: value.Money},
		{Name: "comment", Kind: value.Str},
	}, "suppkey"))

	s.MustAddTable(catalog.MustTable("customer", []catalog.Column{
		{Name: "custkey", Kind: value.Int},
		{Name: "name", Kind: value.Str},
		{Name: "address", Kind: value.Str},
		{Name: "nationkey", Kind: value.Int},
		{Name: "phone", Kind: value.Str},
		{Name: "phonecc", Kind: value.Int}, // phone country code (Q22)
		{Name: "acctbal", Kind: value.Money},
		{Name: "mktsegment", Kind: value.Str},
		{Name: "comment", Kind: value.Str},
	}, "custkey"))

	s.MustAddTable(catalog.MustTable("part", []catalog.Column{
		{Name: "partkey", Kind: value.Int},
		{Name: "name", Kind: value.Str},
		{Name: "mfgr", Kind: value.Str},
		{Name: "brand", Kind: value.Str},
		{Name: "type", Kind: value.Str},
		{Name: "size", Kind: value.Int},
		{Name: "container", Kind: value.Str},
		{Name: "retailprice", Kind: value.Money},
		{Name: "comment", Kind: value.Str},
	}, "partkey"))

	s.MustAddTable(catalog.MustTable("partsupp", []catalog.Column{
		{Name: "partkey", Kind: value.Int},
		{Name: "suppkey", Kind: value.Int},
		{Name: "availqty", Kind: value.Int},
		{Name: "supplycost", Kind: value.Money},
		{Name: "comment", Kind: value.Str},
	}, "partkey", "suppkey"))

	s.MustAddTable(catalog.MustTable("orders", []catalog.Column{
		{Name: "orderkey", Kind: value.Int},
		{Name: "custkey", Kind: value.Int},
		{Name: "orderstatus", Kind: value.Str},
		{Name: "totalprice", Kind: value.Money},
		{Name: "orderdate", Kind: value.Date},
		{Name: "orderpriority", Kind: value.Str},
		{Name: "clerk", Kind: value.Str},
		{Name: "shippriority", Kind: value.Int},
		{Name: "comment", Kind: value.Str},
	}, "orderkey"))

	s.MustAddTable(catalog.MustTable("lineitem", []catalog.Column{
		{Name: "orderkey", Kind: value.Int},
		{Name: "partkey", Kind: value.Int},
		{Name: "suppkey", Kind: value.Int},
		{Name: "linenumber", Kind: value.Int},
		{Name: "quantity", Kind: value.Int},
		{Name: "extendedprice", Kind: value.Money},
		{Name: "discount", Kind: value.Int}, // percent 0..10
		{Name: "tax", Kind: value.Int},      // percent 0..8
		{Name: "returnflag", Kind: value.Str},
		{Name: "linestatus", Kind: value.Str},
		{Name: "shipdate", Kind: value.Date},
		{Name: "commitdate", Kind: value.Date},
		{Name: "receiptdate", Kind: value.Date},
		{Name: "shipinstruct", Kind: value.Str},
		{Name: "shipmode", Kind: value.Str},
		{Name: "comment", Kind: value.Str},
	}, "orderkey", "linenumber"))

	fks := []catalog.ForeignKey{
		{Name: "fk_nation_region", FromTable: "nation", FromCols: []string{"regionkey"}, ToTable: "region", ToCols: []string{"regionkey"}, ToIsUnique: true},
		{Name: "fk_supplier_nation", FromTable: "supplier", FromCols: []string{"nationkey"}, ToTable: "nation", ToCols: []string{"nationkey"}, ToIsUnique: true},
		{Name: "fk_customer_nation", FromTable: "customer", FromCols: []string{"nationkey"}, ToTable: "nation", ToCols: []string{"nationkey"}, ToIsUnique: true},
		{Name: "fk_partsupp_part", FromTable: "partsupp", FromCols: []string{"partkey"}, ToTable: "part", ToCols: []string{"partkey"}, ToIsUnique: true},
		{Name: "fk_partsupp_supplier", FromTable: "partsupp", FromCols: []string{"suppkey"}, ToTable: "supplier", ToCols: []string{"suppkey"}, ToIsUnique: true},
		{Name: "fk_orders_customer", FromTable: "orders", FromCols: []string{"custkey"}, ToTable: "customer", ToCols: []string{"custkey"}, ToIsUnique: true},
		{Name: "fk_lineitem_orders", FromTable: "lineitem", FromCols: []string{"orderkey"}, ToTable: "orders", ToCols: []string{"orderkey"}, ToIsUnique: true},
		{Name: "fk_lineitem_partsupp", FromTable: "lineitem", FromCols: []string{"partkey", "suppkey"}, ToTable: "partsupp", ToCols: []string{"partkey", "suppkey"}, ToIsUnique: true},
	}
	for _, fk := range fks {
		s.MustAddFK(fk)
	}
	return s
}

// SmallTables lists the tables the paper's "wo small tables" variants
// replicate and exclude from automated design (Section 5.1).
func SmallTables() []string { return []string{"nation", "region", "supplier"} }
