package tpch

import "pref/internal/design"

// j builds one equi-join edge spec.
func j(ta string, ca []string, tb string, cb []string) design.QueryJoin {
	return design.QueryJoin{TableA: ta, ColsA: ca, TableB: tb, ColsB: cb}
}

func one(c string) []string { return []string{c} }

// Workload returns the join-graph abstraction of all 22 TPC-H queries for
// the workload-driven design algorithm (Section 4.1): tables plus
// equi-join predicates. Aliases collapse onto table nodes (the paper does
// not duplicate nodes), and non-equi predicates are omitted from the
// graphs by construction.
func Workload() []design.Query {
	return []design.Query{
		{Name: "Q1", Tables: []string{"lineitem"}},
		{Name: "Q2", Joins: []design.QueryJoin{
			j("part", one("partkey"), "partsupp", one("partkey")),
			j("partsupp", one("suppkey"), "supplier", one("suppkey")),
			j("supplier", one("nationkey"), "nation", one("nationkey")),
			j("nation", one("regionkey"), "region", one("regionkey")),
		}},
		{Name: "Q3", Joins: []design.QueryJoin{
			j("customer", one("custkey"), "orders", one("custkey")),
			j("orders", one("orderkey"), "lineitem", one("orderkey")),
		}},
		{Name: "Q4", Joins: []design.QueryJoin{
			j("orders", one("orderkey"), "lineitem", one("orderkey")),
		}},
		{Name: "Q5", Joins: []design.QueryJoin{
			j("customer", one("custkey"), "orders", one("custkey")),
			j("orders", one("orderkey"), "lineitem", one("orderkey")),
			j("lineitem", one("suppkey"), "supplier", one("suppkey")),
			j("customer", one("nationkey"), "supplier", one("nationkey")),
			j("supplier", one("nationkey"), "nation", one("nationkey")),
			j("nation", one("regionkey"), "region", one("regionkey")),
		}},
		{Name: "Q6", Tables: []string{"lineitem"}},
		{Name: "Q7", Joins: []design.QueryJoin{
			j("supplier", one("suppkey"), "lineitem", one("suppkey")),
			j("orders", one("orderkey"), "lineitem", one("orderkey")),
			j("customer", one("custkey"), "orders", one("custkey")),
			j("supplier", one("nationkey"), "nation", one("nationkey")),
			j("customer", one("nationkey"), "nation", one("nationkey")),
		}},
		{Name: "Q8", Joins: []design.QueryJoin{
			j("part", one("partkey"), "lineitem", one("partkey")),
			j("supplier", one("suppkey"), "lineitem", one("suppkey")),
			j("lineitem", one("orderkey"), "orders", one("orderkey")),
			j("orders", one("custkey"), "customer", one("custkey")),
			j("customer", one("nationkey"), "nation", one("nationkey")),
			j("nation", one("regionkey"), "region", one("regionkey")),
			j("supplier", one("nationkey"), "nation", one("nationkey")),
		}},
		{Name: "Q9", Joins: []design.QueryJoin{
			j("part", one("partkey"), "lineitem", one("partkey")),
			j("supplier", one("suppkey"), "lineitem", one("suppkey")),
			j("lineitem", []string{"partkey", "suppkey"}, "partsupp", []string{"partkey", "suppkey"}),
			j("lineitem", one("orderkey"), "orders", one("orderkey")),
			j("supplier", one("nationkey"), "nation", one("nationkey")),
		}},
		{Name: "Q10", Joins: []design.QueryJoin{
			j("customer", one("custkey"), "orders", one("custkey")),
			j("orders", one("orderkey"), "lineitem", one("orderkey")),
			j("customer", one("nationkey"), "nation", one("nationkey")),
		}},
		{Name: "Q11", Joins: []design.QueryJoin{
			j("partsupp", one("suppkey"), "supplier", one("suppkey")),
			j("supplier", one("nationkey"), "nation", one("nationkey")),
		}},
		{Name: "Q12", Joins: []design.QueryJoin{
			j("orders", one("orderkey"), "lineitem", one("orderkey")),
		}},
		{Name: "Q13", Joins: []design.QueryJoin{
			j("customer", one("custkey"), "orders", one("custkey")),
		}},
		{Name: "Q14", Joins: []design.QueryJoin{
			j("lineitem", one("partkey"), "part", one("partkey")),
		}},
		{Name: "Q15", Joins: []design.QueryJoin{
			j("supplier", one("suppkey"), "lineitem", one("suppkey")),
		}},
		{Name: "Q16", Joins: []design.QueryJoin{
			j("partsupp", one("partkey"), "part", one("partkey")),
			j("partsupp", one("suppkey"), "supplier", one("suppkey")),
		}},
		{Name: "Q17", Joins: []design.QueryJoin{
			j("lineitem", one("partkey"), "part", one("partkey")),
		}},
		{Name: "Q18", Joins: []design.QueryJoin{
			j("customer", one("custkey"), "orders", one("custkey")),
			j("orders", one("orderkey"), "lineitem", one("orderkey")),
		}},
		{Name: "Q19", Joins: []design.QueryJoin{
			j("lineitem", one("partkey"), "part", one("partkey")),
		}},
		{Name: "Q20", Joins: []design.QueryJoin{
			j("supplier", one("suppkey"), "partsupp", one("suppkey")),
			j("supplier", one("nationkey"), "nation", one("nationkey")),
		}},
		{Name: "Q21", Joins: []design.QueryJoin{
			j("supplier", one("suppkey"), "lineitem", one("suppkey")),
			j("lineitem", one("orderkey"), "orders", one("orderkey")),
			j("supplier", one("nationkey"), "nation", one("nationkey")),
		}},
		{Name: "Q22", Joins: []design.QueryJoin{
			j("customer", one("custkey"), "orders", one("custkey")),
		}},
	}
}

// WorkloadWithout filters the workload's queries to the tables remaining
// after excluding the given (replicated) tables; edges touching excluded
// tables are dropped (orphaned endpoints survive as joinless tables),
// matching how the "wo small tables" variants are designed.
func WorkloadWithout(excluded ...string) []design.Query {
	return design.FilterWorkload(Workload(), excluded)
}
