package tpch

import (
	"reflect"
	"testing"

	"pref/internal/design"
	"pref/internal/engine"
	"pref/internal/partition"
	"pref/internal/plan"
	"pref/internal/value"
)

func gen(t testing.TB) *TPCH {
	t.Helper()
	return Generate(0.002, 7)
}

func TestGeneratorCardinalities(t *testing.T) {
	d := gen(t)
	db := d.DB
	if db.Tables["region"].Len() != 5 || db.Tables["nation"].Len() != 25 {
		t.Fatalf("region/nation = %d/%d", db.Tables["region"].Len(), db.Tables["nation"].Len())
	}
	// SF ratios: orders = 10·customer, partsupp = 4·part, supplier =
	// customer/15.
	nc := db.Tables["customer"].Len()
	no := db.Tables["orders"].Len()
	np := db.Tables["part"].Len()
	nps := db.Tables["partsupp"].Len()
	ns := db.Tables["supplier"].Len()
	if no != nc*10 {
		t.Errorf("orders = %d, want %d", no, nc*10)
	}
	if nps != np*4 {
		t.Errorf("partsupp = %d, want %d", nps, np*4)
	}
	if ns != nc/15 {
		t.Errorf("supplier = %d, want %d", ns, nc/15)
	}
	// ~4 lineitems per order.
	nl := db.Tables["lineitem"].Len()
	if nl < no*2 || nl > no*7 {
		t.Errorf("lineitem = %d for %d orders", nl, no)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := Generate(0.001, 42)
	b := Generate(0.001, 42)
	if !reflect.DeepEqual(a.DB.Tables["orders"].Rows, b.DB.Tables["orders"].Rows) {
		t.Fatal("same seed must generate identical data")
	}
	c := Generate(0.001, 43)
	if reflect.DeepEqual(a.DB.Tables["orders"].Rows, c.DB.Tables["orders"].Rows) {
		t.Fatal("different seeds should differ")
	}
}

func TestReferentialIntegrity(t *testing.T) {
	d := gen(t)
	db := d.DB
	keys := func(tbl string, cols ...string) map[value.Key]bool {
		data := db.Tables[tbl]
		idx, err := data.Meta.ColIndexes(cols)
		if err != nil {
			t.Fatal(err)
		}
		out := map[value.Key]bool{}
		for _, r := range data.Rows {
			out[value.MakeKey(r, idx)] = true
		}
		return out
	}
	check := func(from string, fromCols []string, toKeys map[value.Key]bool) {
		data := db.Tables[from]
		idx, err := data.Meta.ColIndexes(fromCols)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range data.Rows {
			if !toKeys[value.MakeKey(r, idx)] {
				t.Fatalf("%s row %v: dangling fk %v", from, r, fromCols)
			}
		}
	}
	check("nation", []string{"regionkey"}, keys("region", "regionkey"))
	check("supplier", []string{"nationkey"}, keys("nation", "nationkey"))
	check("customer", []string{"nationkey"}, keys("nation", "nationkey"))
	check("orders", []string{"custkey"}, keys("customer", "custkey"))
	check("lineitem", []string{"orderkey"}, keys("orders", "orderkey"))
	check("partsupp", []string{"partkey"}, keys("part", "partkey"))
	check("partsupp", []string{"suppkey"}, keys("supplier", "suppkey"))
	// Every lineitem (partkey, suppkey) must hit partsupp — the dbgen
	// permutation property Q9 relies on.
	check("lineitem", []string{"partkey", "suppkey"}, keys("partsupp", "partkey", "suppkey"))
}

func TestTwoThirdsCustomersHaveOrders(t *testing.T) {
	d := gen(t)
	db := d.DB
	with := map[int64]bool{}
	ck := db.Tables["orders"].Meta.ColIndex("custkey")
	for _, r := range db.Tables["orders"].Rows {
		with[r[ck]] = true
	}
	// custkey % 3 == 0 never orders.
	for k := range with {
		if k%3 == 0 {
			t.Fatalf("custkey %d ≡ 0 (mod 3) should have no orders", k)
		}
	}
	nc := db.Tables["customer"].Len()
	if len(with) < nc/3 {
		t.Fatalf("only %d of %d customers have orders", len(with), nc)
	}
}

// configsUnderTest returns the reference plus realistic distributed
// configurations (classical partitioning and the SD design).
func configsUnderTest(t testing.TB, d *TPCH) map[string]*partition.Config {
	t.Helper()
	ref := partition.NewConfig(1)
	for _, tbl := range d.DB.Schema.Tables() {
		ref.SetHash(tbl.Name, tbl.PK...)
	}

	cp := partition.NewConfig(4)
	cp.SetHash("lineitem", "orderkey")
	cp.SetHash("orders", "orderkey")
	for _, tbl := range []string{"customer", "part", "partsupp", "supplier", "nation", "region"} {
		cp.SetReplicated(tbl)
	}

	reduced := d.DB.Without(SmallTables()...)
	sd, err := design.SchemaDriven(reduced, design.SDOptions{Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	sdCfg := sd.Config.Clone()
	for _, tbl := range SmallTables() {
		sdCfg.SetReplicated(tbl)
	}

	return map[string]*partition.Config{
		"reference": ref,
		"classical": cp,
		"sd":        sdCfg,
	}
}

func TestAll22QueriesAllConfigs(t *testing.T) {
	d := gen(t)
	cfgs := configsUnderTest(t, d)
	for _, name := range QueryNames {
		var ref []value.Tuple
		for _, cfgName := range []string{"reference", "classical", "sd"} {
			cfg := cfgs[cfgName]
			pdb, err := partition.Apply(d.DB, cfg)
			if err != nil {
				t.Fatalf("%s/%s: apply: %v", name, cfgName, err)
			}
			rw, err := plan.Rewrite(d.Query(name), d.DB.Schema, cfg, plan.Options{})
			if err != nil {
				t.Fatalf("%s/%s: rewrite: %v", name, cfgName, err)
			}
			res, err := engine.Execute(rw, pdb)
			if err != nil {
				t.Fatalf("%s/%s: execute: %v", name, cfgName, err)
			}
			res.SortRows()
			if cfgName == "reference" {
				ref = res.Rows
				if len(ref) == 0 {
					t.Errorf("%s returned no rows at this scale — widen its filters", name)
				}
				continue
			}
			if len(res.Rows) != len(ref) || (len(ref) > 0 && !reflect.DeepEqual(res.Rows, ref)) {
				t.Errorf("%s under %s diverges from reference: got %d rows, want %d",
					name, cfgName, len(res.Rows), len(ref))
			}
		}
	}
}

func TestWorkloadSpecsCoverAllQueries(t *testing.T) {
	w := Workload()
	if len(w) != 22 {
		t.Fatalf("workload has %d queries", len(w))
	}
	seen := map[string]bool{}
	for _, q := range w {
		seen[q.Name] = true
		if len(q.Joins) == 0 && len(q.Tables) == 0 {
			t.Errorf("%s has no tables", q.Name)
		}
	}
	for _, n := range QueryNames {
		if !seen[n] {
			t.Errorf("missing workload spec for %s", n)
		}
	}
}

func TestWorkloadWithout(t *testing.T) {
	w := WorkloadWithout(SmallTables()...)
	for _, q := range w {
		for _, e := range q.Joins {
			for _, tbl := range []string{e.TableA, e.TableB} {
				for _, small := range SmallTables() {
					if tbl == small {
						t.Fatalf("%s still references %s", q.Name, small)
					}
				}
			}
		}
	}
}

func TestWDOnTPCHWorkload(t *testing.T) {
	d := gen(t)
	w := WorkloadWithout(SmallTables()...)
	wd, err := design.WorkloadDriven(d.DB, w, design.WDOptions{Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The paper merges the 22 queries into 4 components after phase 1 and
	// 2 after the cost-based phase; exact counts depend on the query
	// encodings, but substantial merging must happen.
	if wd.UnitsAfterPhase1 >= wd.UnitsBeforeMerge {
		t.Fatalf("phase 1 should merge: %d → %d", wd.UnitsBeforeMerge, wd.UnitsAfterPhase1)
	}
	if len(wd.Groups) > 4 {
		t.Fatalf("final groups = %d, want ≤ 4", len(wd.Groups))
	}
	// Every query must be routed somewhere.
	for _, q := range w {
		if len(wd.GroupsFor(q.Name)) == 0 {
			t.Errorf("query %s not routed", q.Name)
		}
	}
}
