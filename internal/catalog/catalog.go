// Package catalog holds schema metadata: tables, columns, primary keys and
// referential constraints. The design algorithms (Sections 3 and 4 of the
// paper) consume this metadata to build schema graphs; the partitioner and
// engine use it to resolve column positions and string dictionaries.
package catalog

import (
	"fmt"
	"sort"

	"pref/internal/value"
)

// Column describes one attribute of a table.
type Column struct {
	Name string
	Kind value.Kind
}

// ForeignKey is a referential constraint from one table's columns to
// another table's columns (usually its primary key). Design algorithms
// treat each constraint as a potential equi-join path.
type ForeignKey struct {
	Name       string   // constraint name, e.g. "fk_orders_customer"
	FromTable  string   // referencing table
	FromCols   []string // referencing columns
	ToTable    string   // referenced table
	ToCols     []string // referenced columns (unique in ToTable)
	ToIsUnique bool     // whether ToCols is a key of ToTable
}

// Table describes one relation.
type Table struct {
	Name    string
	Columns []Column
	PK      []string // primary key column names (may be empty)

	colIndex map[string]int
	dicts    map[string]*value.Dict // per Str column
}

// NewTable builds a table description. Column names must be unique.
func NewTable(name string, cols []Column, pk ...string) (*Table, error) {
	t := &Table{
		Name:     name,
		Columns:  cols,
		PK:       pk,
		colIndex: make(map[string]int, len(cols)),
		dicts:    make(map[string]*value.Dict),
	}
	for i, c := range cols {
		if _, dup := t.colIndex[c.Name]; dup {
			return nil, fmt.Errorf("catalog: table %s: duplicate column %s", name, c.Name)
		}
		t.colIndex[c.Name] = i
		if c.Kind == value.Str {
			t.dicts[c.Name] = value.NewDict()
		}
	}
	for _, p := range pk {
		if _, ok := t.colIndex[p]; !ok {
			return nil, fmt.Errorf("catalog: table %s: pk column %s not defined", name, p)
		}
	}
	return t, nil
}

// MustTable is NewTable that panics on error. The panic is reserved for
// the programmer-error invariant of a statically known (source-literal)
// schema; fallible paths — loaders, user-supplied schemas — must use
// NewTable and handle the error.
func MustTable(name string, cols []Column, pk ...string) *Table {
	t, err := NewTable(name, cols, pk...)
	if err != nil {
		// lint:invariant
		panic(err)
	}
	return t
}

// ColIndex returns the position of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	if i, ok := t.colIndex[name]; ok {
		return i
	}
	return -1
}

// ColIndexes maps column names to positions, erroring on unknown names.
func (t *Table) ColIndexes(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		idx := t.ColIndex(n)
		if idx < 0 {
			return nil, fmt.Errorf("catalog: table %s has no column %s", t.Name, n)
		}
		out[i] = idx
	}
	return out, nil
}

// Dict returns the string dictionary for a Str column, or nil.
func (t *Table) Dict(col string) *value.Dict { return t.dicts[col] }

// NumCols reports the arity of the table.
func (t *Table) NumCols() int { return len(t.Columns) }

// IsPK reports whether the given column list is exactly the primary key.
func (t *Table) IsPK(cols []string) bool {
	if len(cols) != len(t.PK) || len(t.PK) == 0 {
		return false
	}
	a := append([]string(nil), cols...)
	b := append([]string(nil), t.PK...)
	sort.Strings(a)
	sort.Strings(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Schema is a set of tables plus referential constraints.
type Schema struct {
	Name   string
	tables map[string]*Table
	order  []string // insertion order, for deterministic iteration
	FKs    []ForeignKey
}

// NewSchema returns an empty named schema.
func NewSchema(name string) *Schema {
	return &Schema{Name: name, tables: make(map[string]*Table)}
}

// AddTable registers a table; duplicate names are an error.
func (s *Schema) AddTable(t *Table) error {
	if _, dup := s.tables[t.Name]; dup {
		return fmt.Errorf("catalog: schema %s: duplicate table %s", s.Name, t.Name)
	}
	s.tables[t.Name] = t
	s.order = append(s.order, t.Name)
	return nil
}

// MustAddTable is AddTable that panics on error. Reserved for
// programmer-error invariants (statically known schemas; Without copying
// an already-valid schema, where duplicates are impossible). Fallible
// paths must use AddTable and handle the error.
func (s *Schema) MustAddTable(t *Table) {
	if err := s.AddTable(t); err != nil {
		// lint:invariant
		panic(err)
	}
}

// AddFK registers a referential constraint after validating both ends.
func (s *Schema) AddFK(fk ForeignKey) error {
	from, ok := s.tables[fk.FromTable]
	if !ok {
		return fmt.Errorf("catalog: fk %s: unknown table %s", fk.Name, fk.FromTable)
	}
	to, ok := s.tables[fk.ToTable]
	if !ok {
		return fmt.Errorf("catalog: fk %s: unknown table %s", fk.Name, fk.ToTable)
	}
	if len(fk.FromCols) == 0 || len(fk.FromCols) != len(fk.ToCols) {
		return fmt.Errorf("catalog: fk %s: column lists must be non-empty and equal length", fk.Name)
	}
	if _, err := from.ColIndexes(fk.FromCols); err != nil {
		return err
	}
	if _, err := to.ColIndexes(fk.ToCols); err != nil {
		return err
	}
	s.FKs = append(s.FKs, fk)
	return nil
}

// MustAddFK is AddFK that panics on error. Reserved for the
// programmer-error invariant of statically known constraints; fallible
// paths (runtime-discovered constraints) must use AddFK.
func (s *Schema) MustAddFK(fk ForeignKey) {
	if err := s.AddFK(fk); err != nil {
		// lint:invariant
		panic(err)
	}
}

// Table returns the named table, or nil.
func (s *Schema) Table(name string) *Table { return s.tables[name] }

// Tables returns all tables in insertion order.
func (s *Schema) Tables() []*Table {
	out := make([]*Table, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.tables[n])
	}
	return out
}

// TableNames returns table names in insertion order.
func (s *Schema) TableNames() []string {
	return append([]string(nil), s.order...)
}

// Without returns a copy of the schema with the named tables (and any
// constraint touching them) removed. The design algorithms use this to
// exclude small fully-replicated tables before partitioning (Section 3.1).
func (s *Schema) Without(names ...string) *Schema {
	drop := make(map[string]bool, len(names))
	for _, n := range names {
		drop[n] = true
	}
	out := NewSchema(s.Name)
	for _, n := range s.order {
		if !drop[n] {
			out.MustAddTable(s.tables[n])
		}
	}
	for _, fk := range s.FKs {
		if !drop[fk.FromTable] && !drop[fk.ToTable] {
			out.FKs = append(out.FKs, fk)
		}
	}
	return out
}
