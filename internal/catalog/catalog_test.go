package catalog

import (
	"testing"

	"pref/internal/value"
)

func twoTableSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema("test")
	s.MustAddTable(MustTable("customer",
		[]Column{{"custkey", value.Int}, {"name", value.Str}}, "custkey"))
	s.MustAddTable(MustTable("orders",
		[]Column{{"orderkey", value.Int}, {"custkey", value.Int}, {"total", value.Money}}, "orderkey"))
	s.MustAddFK(ForeignKey{
		Name: "fk_orders_customer", FromTable: "orders", FromCols: []string{"custkey"},
		ToTable: "customer", ToCols: []string{"custkey"}, ToIsUnique: true,
	})
	return s
}

func TestSchemaBasics(t *testing.T) {
	s := twoTableSchema(t)
	if s.Table("customer") == nil || s.Table("orders") == nil {
		t.Fatal("tables missing")
	}
	if s.Table("nope") != nil {
		t.Fatal("unknown table should be nil")
	}
	names := s.TableNames()
	if len(names) != 2 || names[0] != "customer" || names[1] != "orders" {
		t.Fatalf("TableNames = %v", names)
	}
	if len(s.FKs) != 1 {
		t.Fatalf("FKs = %d", len(s.FKs))
	}
}

func TestColIndex(t *testing.T) {
	s := twoTableSchema(t)
	o := s.Table("orders")
	if o.ColIndex("custkey") != 1 {
		t.Fatalf("ColIndex(custkey) = %d", o.ColIndex("custkey"))
	}
	if o.ColIndex("missing") != -1 {
		t.Fatal("missing column should be -1")
	}
	idx, err := o.ColIndexes([]string{"total", "orderkey"})
	if err != nil {
		t.Fatal(err)
	}
	if idx[0] != 2 || idx[1] != 0 {
		t.Fatalf("ColIndexes = %v", idx)
	}
	if _, err := o.ColIndexes([]string{"nope"}); err == nil {
		t.Fatal("expected error for unknown column")
	}
}

func TestDuplicateColumnRejected(t *testing.T) {
	if _, err := NewTable("t", []Column{{"a", value.Int}, {"a", value.Int}}); err == nil {
		t.Fatal("duplicate column must error")
	}
}

func TestBadPKRejected(t *testing.T) {
	if _, err := NewTable("t", []Column{{"a", value.Int}}, "zz"); err == nil {
		t.Fatal("pk referencing unknown column must error")
	}
}

func TestDuplicateTableRejected(t *testing.T) {
	s := NewSchema("x")
	tb := MustTable("t", []Column{{"a", value.Int}})
	if err := s.AddTable(tb); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTable(tb); err == nil {
		t.Fatal("duplicate table must error")
	}
}

func TestFKValidation(t *testing.T) {
	s := twoTableSchema(t)
	bad := []ForeignKey{
		{Name: "f1", FromTable: "nope", FromCols: []string{"x"}, ToTable: "customer", ToCols: []string{"custkey"}},
		{Name: "f2", FromTable: "orders", FromCols: []string{"x"}, ToTable: "customer", ToCols: []string{"custkey"}},
		{Name: "f3", FromTable: "orders", FromCols: []string{"custkey"}, ToTable: "customer", ToCols: []string{"zz"}},
		{Name: "f4", FromTable: "orders", FromCols: nil, ToTable: "customer", ToCols: nil},
		{Name: "f5", FromTable: "orders", FromCols: []string{"custkey"}, ToTable: "customer", ToCols: []string{"custkey", "name"}},
	}
	for _, fk := range bad {
		if err := s.AddFK(fk); err == nil {
			t.Errorf("fk %s should have been rejected", fk.Name)
		}
	}
}

func TestIsPK(t *testing.T) {
	s := twoTableSchema(t)
	c := s.Table("customer")
	if !c.IsPK([]string{"custkey"}) {
		t.Fatal("custkey is the pk")
	}
	if c.IsPK([]string{"name"}) {
		t.Fatal("name is not the pk")
	}
	multi := MustTable("ps", []Column{{"a", value.Int}, {"b", value.Int}}, "a", "b")
	if !multi.IsPK([]string{"b", "a"}) {
		t.Fatal("pk check must be order-insensitive")
	}
	nopk := MustTable("n", []Column{{"a", value.Int}})
	if nopk.IsPK(nil) || nopk.IsPK([]string{}) {
		t.Fatal("empty pk never matches")
	}
}

func TestDicts(t *testing.T) {
	s := twoTableSchema(t)
	c := s.Table("customer")
	if c.Dict("name") == nil {
		t.Fatal("str column should have a dict")
	}
	if c.Dict("custkey") != nil {
		t.Fatal("int column should not have a dict")
	}
}

func TestWithout(t *testing.T) {
	s := twoTableSchema(t)
	reduced := s.Without("customer")
	if reduced.Table("customer") != nil {
		t.Fatal("customer should be removed")
	}
	if reduced.Table("orders") == nil {
		t.Fatal("orders should remain")
	}
	if len(reduced.FKs) != 0 {
		t.Fatal("fk touching removed table should be dropped")
	}
	// Original untouched.
	if s.Table("customer") == nil || len(s.FKs) != 1 {
		t.Fatal("Without must not mutate the receiver")
	}
}
