module pref

go 1.22
