package pref_test

import (
	"testing"

	"pref"
)

// TestQuickstart exercises the documented public-API flow end to end.
func TestQuickstart(t *testing.T) {
	db := pref.GenerateTPCH(0.002, 42)
	d, err := pref.SchemaDriven(db.DB.Without("nation", "region", "supplier"), pref.SDOptions{Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := d.Config.Clone()
	for _, tbl := range []string{"nation", "region", "supplier"} {
		cfg.Set(&pref.TableScheme{Table: tbl, Method: pref.Replicated})
	}
	pdb, err := pref.Apply(db.DB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pref.Run(db.Query("Q3"), db.DB.Schema, cfg, pdb)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("Q3 returned no rows")
	}
	if d.DL <= 0 || d.DL > 1 {
		t.Fatalf("DL = %v", d.DL)
	}
}

// TestHandBuiltSchema drives the facade with a user-defined schema,
// manual PREF config, a query, and bulk loading.
func TestHandBuiltSchema(t *testing.T) {
	s := pref.NewSchema("shop")
	s.MustAddTable(pref.MustTable("users",
		[]pref.Column{{Name: "uid", Kind: pref.Int}, {Name: "name", Kind: pref.Str}}, "uid"))
	s.MustAddTable(pref.MustTable("orders",
		[]pref.Column{{Name: "oid", Kind: pref.Int}, {Name: "uid", Kind: pref.Int}, {Name: "amount", Kind: pref.Money}}, "oid"))
	s.MustAddFK(pref.ForeignKey{
		Name: "fk", FromTable: "orders", FromCols: []string{"uid"},
		ToTable: "users", ToCols: []string{"uid"}, ToIsUnique: true,
	})

	db := pref.NewDatabase(s)
	dict := s.Table("users").Dict("name")
	for i := int64(0); i < 40; i++ {
		db.Tables["users"].MustAppend(pref.Tuple{i, dict.Code("user")})
	}
	for i := int64(0); i < 200; i++ {
		db.Tables["orders"].MustAppend(pref.Tuple{i, i % 40, pref.FromMoney(float64(i))})
	}

	cfg := pref.NewConfig(4)
	cfg.SetHash("users", "uid")
	cfg.SetPref("orders", "users", []string{"uid"}, []string{"uid"})
	pdb, err := pref.Apply(db, cfg)
	if err != nil {
		t.Fatal(err)
	}

	q := pref.Aggregate(
		pref.Join(pref.Scan("users", "u"), pref.Scan("orders", "o"),
			pref.Inner, []string{"u.uid"}, []string{"o.uid"}),
		[]string{"u.uid"},
		pref.Sum(pref.Col("o.amount"), "total"),
	)
	res, err := pref.Run(q, s, cfg, pdb)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 40 {
		t.Fatalf("groups = %d, want 40", len(res.Rows))
	}
	// PREF co-location: the join itself ships nothing; only the final
	// aggregation shuffles nothing either (u.uid is the hash column).
	if res.Stats.Repartitions != 0 {
		t.Fatalf("repartitions = %d, want 0 (hash-aligned group-by)", res.Stats.Repartitions)
	}

	// Incremental load keeps working.
	loader := pref.NewLoader(pdb, cfg)
	if err := loader.Insert("orders", pref.Tuple{999, 7, pref.FromMoney(12.5)}); err != nil {
		t.Fatal(err)
	}
	if pdb.Tables["orders"].OriginalRows != 201 {
		t.Fatalf("rows after insert = %d", pdb.Tables["orders"].OriginalRows)
	}
}

func TestWorkloadDrivenFacade(t *testing.T) {
	db := pref.GenerateTPCH(0.002, 7)
	w := pref.FilterWorkload(pref.TPCHWorkload(), []string{"nation", "region", "supplier"})
	wd, err := pref.WorkloadDriven(db.DB.Without("nation", "region", "supplier"), w, pref.WDOptions{Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(wd.Groups) == 0 {
		t.Fatal("no groups")
	}
	for _, name := range pref.TPCHQueryNames() {
		if len(wd.GroupsFor(name)) == 0 {
			t.Errorf("query %s unrouted", name)
		}
	}
}
