// Package pref is a from-scratch implementation of predicate-based
// reference partitioning (PREF) and its automated partitioning design
// algorithms, reproducing "Locality-aware Partitioning in Parallel
// Database Systems" (Zamanian, Binnig, Salama — SIGMOD 2015).
//
// The package bundles everything a shared-nothing analytical system needs
// to use PREF end to end:
//
//   - Schema and data modeling (Schema, Table, Database) with
//     dictionary-encoded values;
//   - The partitioning schemes (HASH, ROUND-ROBIN, RANGE, REPLICATED and
//     PREF) with the dup/hasRef bitmap indexes of the paper's Section 2;
//   - The schema-driven (SchemaDriven) and workload-driven
//     (WorkloadDriven) automated design algorithms of Sections 3–4,
//     including redundancy estimation from (optionally sampled) join-key
//     histograms;
//   - SPJA query plans and the locality-aware rewrite of Section 2.2;
//   - An in-memory parallel execution engine that meters network traffic
//     and models cluster runtime;
//   - Tuple-at-a-time bulk loading with partition indexes (Section 2.3);
//   - A multi-tenant serving layer: per-tenant quotas, weighted-fair
//     admission, cost-priced load shedding, deadline propagation, an
//     epoch-keyed plan cache, and graceful drain;
//   - TPC-H and TPC-DS substrates (generators, queries, workloads).
//
// # Quick start
//
//	db := pref.GenerateTPCH(0.01, 42) // deterministic micro TPC-H
//	d, _ := pref.SchemaDriven(db.DB, pref.SDOptions{Parts: 10})
//	pdb, _ := pref.Apply(db.DB, d.Config)
//	q := db.Query("Q3")
//	res, _ := pref.Run(q, db.DB.Schema, d.Config, pdb)
//	fmt.Println(len(res.Rows), "rows,", res.Stats.BytesShipped, "bytes shipped")
//
// See the examples/ directory for complete programs.
package pref

import (
	"context"

	"pref/internal/bulkload"
	"pref/internal/catalog"
	"pref/internal/check"
	"pref/internal/cluster"
	"pref/internal/design"
	"pref/internal/engine"
	"pref/internal/fault"
	"pref/internal/partition"
	"pref/internal/plan"
	"pref/internal/serve"
	"pref/internal/table"
	"pref/internal/tpcds"
	"pref/internal/tpch"
	"pref/internal/trace"
	"pref/internal/value"
)

// ---- schema & data ----

// Core schema and storage types.
type (
	// Schema is a set of tables plus referential constraints.
	Schema = catalog.Schema
	// Table describes one relation (columns, primary key, dictionaries).
	Table = catalog.Table
	// Column is one attribute (name + kind).
	Column = catalog.Column
	// ForeignKey is a referential constraint between two tables.
	ForeignKey = catalog.ForeignKey
	// Database is a set of unpartitioned in-memory tables.
	Database = table.Database
	// PartitionedDatabase is a database after partitioning.
	PartitionedDatabase = table.PartitionedDatabase
	// Tuple is one row of int64-encoded values.
	Tuple = value.Tuple
	// Kind is a column value kind (Int, Money, Date, Str, Float).
	Kind = value.Kind
)

// Value kinds.
const (
	Int   = value.Int
	Money = value.Money
	Date  = value.Date
	Str   = value.Str
	Float = value.Float
)

// NewSchema returns an empty named schema.
func NewSchema(name string) *Schema { return catalog.NewSchema(name) }

// NewTable builds a table description (errors on duplicate columns).
func NewTable(name string, cols []Column, pk ...string) (*Table, error) {
	return catalog.NewTable(name, cols, pk...)
}

// MustTable is NewTable that panics on error.
func MustTable(name string, cols []Column, pk ...string) *Table {
	return catalog.MustTable(name, cols, pk...)
}

// NewDatabase returns an empty database over a schema.
func NewDatabase(s *Schema) *Database { return table.NewDatabase(s) }

// ---- partitioning (Section 2) ----

// Partitioning configuration types.
type (
	// Config assigns a partitioning scheme to every table.
	Config = partition.Config
	// TableScheme is one table's scheme.
	TableScheme = partition.TableScheme
	// Predicate is a conjunctive equi-join partitioning predicate.
	Predicate = partition.Predicate
)

// Partitioning methods.
const (
	Hash       = partition.Hash
	RoundRobin = partition.RoundRobin
	Range      = partition.Range
	Replicated = partition.Replicated
	Pref       = partition.Pref
)

// NewConfig returns an empty configuration for n partitions.
func NewConfig(n int) *Config { return partition.NewConfig(n) }

// Apply partitions a database under a configuration, producing the
// partitioned database with populated dup/hasRef bitmap indexes.
func Apply(db *Database, cfg *Config) (*PartitionedDatabase, error) {
	return partition.Apply(db, cfg)
}

// ---- automated design (Sections 3 & 4) ----

// Design algorithm types.
type (
	// SDOptions configures the schema-driven algorithm.
	SDOptions = design.SDOptions
	// WDOptions configures the workload-driven algorithm.
	WDOptions = design.WDOptions
	// Design is a schema-driven design result.
	Design = design.Design
	// WDDesign is a workload-driven design result.
	WDDesign = design.WDDesign
	// Query abstracts a workload query (tables + equi-join predicates).
	Query = design.Query
	// QueryJoin is one equi-join predicate of a workload query.
	QueryJoin = design.QueryJoin
)

// SchemaDriven runs the schema-driven partitioning design algorithm.
func SchemaDriven(db *Database, opt SDOptions) (*Design, error) {
	return design.SchemaDriven(db, opt)
}

// WorkloadDriven runs the workload-driven partitioning design algorithm.
func WorkloadDriven(db *Database, queries []Query, opt WDOptions) (*WDDesign, error) {
	return design.WorkloadDriven(db, queries, opt)
}

// ---- query plans & execution ----

// Plan and execution types.
type (
	// PlanNode is a logical or physical query plan operator.
	PlanNode = plan.Node
	// PlanOptions toggles rewrite optimizations and cardinality hints.
	PlanOptions = plan.Options
	// Rewritten is a rewritten (physical) plan ready for execution.
	Rewritten = plan.Rewritten
	// Result is a completed query with telemetry.
	Result = engine.Result
	// Stats is the execution telemetry (bytes shipped, rows, exchanges).
	Stats = engine.Stats
	// Trace is the per-operator, per-node execution trace populated by
	// Explain / ExecOptions.Trace; renders as EXPLAIN ANALYZE via
	// Trace.Render and exports via Trace.JSON.
	Trace = trace.Trace
	// OpTrace is one operator's span within a Trace.
	OpTrace = trace.OpTrace
	// TraceRenderOptions tunes EXPLAIN ANALYZE rendering (wall-time
	// hiding for deterministic output, per-node breakdowns).
	TraceRenderOptions = trace.RenderOptions
	// TraceKind classifies a span's operator (trace.KindJoin, ...);
	// TraceKind.Exchange reports whether the operator legally ships rows.
	TraceKind = trace.Kind
	// CostModel converts telemetry into simulated cluster runtime.
	CostModel = engine.CostModel
	// ExecOptions tunes the execution model (buffer-pool size etc.).
	ExecOptions = engine.ExecOptions
	// FaultPolicy configures deterministic fault injection: node
	// crashes, stragglers, shipment failures, per-query timeouts.
	FaultPolicy = fault.Policy
	// PartitionLostError reports an unrecoverable partition loss
	// (a down node whose data has no surviving duplicate copies).
	PartitionLostError = fault.PartitionLostError
	// ValExpr is a scalar expression.
	ValExpr = plan.ValExpr
	// BoolExpr is a predicate expression.
	BoolExpr = plan.BoolExpr
	// AggExpr is one aggregate of an aggregation operator.
	AggExpr = plan.AggExpr
	// OrderSpec is one ORDER BY term of a TopK operator.
	OrderSpec = plan.OrderSpec
)

// Span kinds: the TraceKind values OpTrace.Kind takes when walking a
// Trace (internal/trace documents the per-kind conservation laws).
const (
	KindScan            = trace.KindScan
	KindFilter          = trace.KindFilter
	KindProject         = trace.KindProject
	KindJoin            = trace.KindJoin
	KindAggregate       = trace.KindAggregate
	KindPartialAgg      = trace.KindPartialAgg
	KindFinalAgg        = trace.KindFinalAgg
	KindRepartition     = trace.KindRepartition
	KindBroadcast       = trace.KindBroadcast
	KindDistinctPref    = trace.KindDistinctPref
	KindDistinctByValue = trace.KindDistinctByValue
	KindGather          = trace.KindGather
	KindTopK            = trace.KindTopK
	KindResult          = trace.KindResult
	KindUnexecuted      = trace.KindUnexecuted
)

// Plan construction (see package plan for the full builder set).
var (
	// Scan reads a base table under an alias.
	Scan = plan.Scan
	// Filter applies a selection predicate.
	Filter = plan.Filter
	// Join builds an equi-join.
	Join = plan.Join
	// Project projects/renames columns.
	Project = plan.Project
	// ProjectCols projects existing columns by name.
	ProjectCols = plan.ProjectCols
	// Aggregate groups and aggregates.
	Aggregate = plan.Aggregate
	// Col references a column; Lit / MoneyLit / DateLit build literals.
	Col      = plan.Col
	Lit      = plan.Lit
	MoneyLit = plan.MoneyLit
	DateLit  = plan.DateLit
	// Eq/Ne/Lt/Le/Gt/Ge/And/Or/Not/In build predicates.
	Eq  = plan.Eq
	Ne  = plan.Ne
	Lt  = plan.Lt
	Le  = plan.Le
	Gt  = plan.Gt
	Ge  = plan.Ge
	And = plan.And
	Or  = plan.Or
	Not = plan.Not
	In  = plan.In
	// Sum/Count/CountCol/CountDistinct/Avg/Min/Max build aggregates.
	Sum           = plan.Sum
	Count         = plan.Count
	CountCol      = plan.CountCol
	CountDistinct = plan.CountDistinct
	Avg           = plan.Avg
	Min           = plan.Min
	Max           = plan.Max
	// TopK builds an ORDER BY … LIMIT operator.
	TopK = plan.TopK
)

// Join types.
const (
	Inner     = plan.Inner
	LeftOuter = plan.LeftOuter
	Semi      = plan.Semi
	Anti      = plan.Anti
)

// Rewrite applies the locality-aware rewrite of Section 2.2 to a logical
// plan under a partitioning configuration.
func Rewrite(root PlanNode, s *Schema, cfg *Config, opt PlanOptions) (*Rewritten, error) {
	return plan.Rewrite(root, s, cfg, opt)
}

// ---- static verification (internal/check) ----

// Verify statically re-proves the invariants of a rewritten plan without
// executing it: the recorded Dup/Part properties, join locality,
// PREF-duplicate freedom, and the soundness of the design it was rewritten
// against. The engine runs this automatically before every execution when
// ExecOptions.Verify is set or the PREF_VERIFY environment variable is
// non-empty; cmd/prefcheck exposes it on the command line.
func Verify(rw *Rewritten) error { return check.Verify(rw) }

// VerifyDesign statically checks a partitioning configuration against a
// schema: acyclic PREF chains rooted at proper seed tables, existing
// columns, and equi-join-compatible partitioning predicates.
func VerifyDesign(s *Schema, cfg *Config) error { return check.VerifyDesign(s, cfg) }

// Fault sentinel errors, for errors.Is against failed executions.
var (
	// ErrPartitionLost matches unrecoverable partition losses.
	ErrPartitionLost = fault.ErrPartitionLost
	// ErrNodeFailed matches work units that exhausted their retry budget.
	ErrNodeFailed = fault.ErrNodeFailed
	// ErrShipmentFailed matches exchanges that exhausted their retry budget.
	ErrShipmentFailed = fault.ErrShipmentFailed
)

// ---- cluster resilience layer ----

// Cluster health-layer types. A Cluster is the long-lived membership and
// health layer shared across queries: per-node health state machine and
// circuit breaker, per-epoch degraded placements, admission control,
// hedged stragglers, and background partition rebuild. Attach one via
// ExecOptions.Cluster; a nil Cluster disables the layer.
type (
	// Cluster is the cross-query node-health and admission layer.
	Cluster = cluster.Cluster
	// ClusterOptions configures breaker thresholds, admission bounds and
	// the hedging policy.
	ClusterOptions = cluster.Options
	// ClusterView is one query's immutable health snapshot.
	ClusterView = cluster.View
	// ClusterStats is a snapshot of the cross-query health counters.
	ClusterStats = cluster.Stats
	// NodeState is one node's position in the health state machine.
	NodeState = cluster.State
	// HedgePolicy configures speculative duplicates for straggling units.
	HedgePolicy = cluster.HedgePolicy
)

// Node health states (healthy → suspect → down → recovering → healthy).
const (
	NodeHealthy    = cluster.Healthy
	NodeSuspect    = cluster.Suspect
	NodeDown       = cluster.Down
	NodeRecovering = cluster.Recovering
)

// Cluster sentinel errors, for errors.Is against failed executions.
var (
	// ErrAdmissionTimeout matches queries that timed out waiting for an
	// execution slot.
	ErrAdmissionTimeout = cluster.ErrAdmissionTimeout
	// ErrNodeTripped matches work units failed fast by an open breaker.
	ErrNodeTripped = cluster.ErrNodeTripped
)

// NewCluster builds a cluster health layer and starts its background
// rebuild worker; Close stops it. Pass it to queries via
// ExecOptions.Cluster.
func NewCluster(opt ClusterOptions) *Cluster { return cluster.New(opt) }

// ---- multi-tenant serving layer ----

// Serving-layer types. A Server is a long-lived multi-tenant query server
// over one partitioned database: per-tenant token-bucket quotas and
// weighted-fair admission, cost-priced load shedding, bounded retry
// budgets, an epoch-keyed plan cache, streaming delivery with
// backpressure, end-to-end deadline propagation, and graceful drain.
type (
	// Server is the multi-tenant query server (serve.Server).
	Server = serve.Server
	// ServeOptions configures a Server (catalog, tenants, admission
	// ladder bounds, fault hooks).
	ServeOptions = serve.Options
	// TenantConfig declares one tenant: fair-share weight plus an
	// optional token-bucket quota (sustained rate + burst).
	TenantConfig = serve.TenantConfig
	// QueryStream delivers one result in bounded chunks with
	// backpressure; the serving slot is held until it is drained/closed.
	QueryStream = serve.Stream
	// QueryResponse is one fully materialized result plus serving
	// metadata (epoch, attempts, cache hit, latency).
	QueryResponse = serve.Response
	// ServeMetrics snapshots a server's counters (outcomes by class,
	// rejections by ladder stage, latency quantiles, cluster stats).
	ServeMetrics = serve.Metrics
	// LatencySummary is a fixed quantile snapshot (p50/p99/p999/max).
	LatencySummary = serve.Summary
	// RejectedError is a typed admission rejection: the ladder rung, the
	// tenant, the priced cost, and a Retry-After hint. Unwrap matches the
	// rung's sentinel via errors.Is.
	RejectedError = serve.RejectedError
)

// Serving-layer sentinel errors, for errors.Is against failed
// submissions. Together with ErrAdmissionTimeout (the queue rung) and the
// fault sentinels they form the complete rejection taxonomy: every query
// a server turns away fails with exactly one of these.
var (
	// ErrDeadlineExceeded matches queries killed by an expired deadline —
	// client context or per-query timeout — anywhere along the path;
	// context.DeadlineExceeded stays matchable underneath. Deliberately
	// distinct from ErrAdmissionTimeout.
	ErrDeadlineExceeded = engine.ErrDeadlineExceeded
	// ErrAllNodesDown matches queries with no surviving node to run on
	// (every node permanently failed or breaker-tripped); transient when
	// breakers are the cause, so worth retrying after cool-down.
	ErrAllNodesDown = engine.ErrAllNodesDown
	// ErrQuotaExceeded matches rejections by a tenant's token bucket.
	ErrQuotaExceeded = serve.ErrQuotaExceeded
	// ErrOverloaded matches queries shed by cost-priced overload
	// protection.
	ErrOverloaded = serve.ErrOverloaded
	// ErrServerClosed matches submissions against a draining server.
	ErrServerClosed = serve.ErrServerClosed
	// ErrUnknownTenant / ErrUnknownQuery match submissions outside the
	// configured tenant set / prepared catalog.
	ErrUnknownTenant = serve.ErrUnknownTenant
	ErrUnknownQuery  = serve.ErrUnknownQuery
)

// NewServer starts a multi-tenant serving layer over a database (or an
// already-partitioned one shared with a write path). The caller must
// Close it; Close drains gracefully and leaks no goroutines.
func NewServer(opt ServeOptions) (*Server, error) { return serve.NewServer(opt) }

// Execute runs a rewritten plan against a partitioned database.
func Execute(rw *Rewritten, pdb *PartitionedDatabase) (*Result, error) {
	return engine.Execute(rw, pdb)
}

// ExecuteOpts is Execute with an explicit execution model — buffer-pool
// size, and fault injection via ExecOptions.Fault.
func ExecuteOpts(rw *Rewritten, pdb *PartitionedDatabase, opt ExecOptions) (*Result, error) {
	return engine.ExecuteOpts(rw, pdb, opt)
}

// ExecuteCtx is ExecuteOpts under a caller-supplied context: cancelling it
// aborts all in-flight per-node work.
func ExecuteCtx(ctx context.Context, rw *Rewritten, pdb *PartitionedDatabase, opt ExecOptions) (*Result, error) {
	return engine.ExecuteCtx(ctx, rw, pdb, opt)
}

// Run rewrites and executes a logical plan in one step.
func Run(root PlanNode, s *Schema, cfg *Config, pdb *PartitionedDatabase) (*Result, error) {
	rw, err := plan.Rewrite(root, s, cfg, plan.Options{})
	if err != nil {
		return nil, err
	}
	return engine.Execute(rw, pdb)
}

// Explain is Run with per-operator tracing enabled: the result carries a
// Trace whose Render is an EXPLAIN ANALYZE of the executed plan (observed
// per-operator, per-node cardinalities, shipped bytes, dedup hits, fault
// retries and wall times annotated onto the physical operator tree).
func Explain(root PlanNode, s *Schema, cfg *Config, pdb *PartitionedDatabase) (*Result, error) {
	rw, err := plan.Rewrite(root, s, cfg, plan.Options{})
	if err != nil {
		return nil, err
	}
	return engine.ExecuteOpts(rw, pdb, ExecOptions{Trace: true})
}

// DefaultCostModel approximates the paper's commodity cluster.
func DefaultCostModel() CostModel { return engine.DefaultCostModel() }

// ---- bulk loading (Section 2.3) ----

// Loader incrementally loads tuples into a partitioned database using
// partition indexes.
type Loader = bulkload.Loader

// NewLoader prepares a bulk loader for a partitioned database.
func NewLoader(pdb *PartitionedDatabase, cfg *Config) *Loader {
	return bulkload.NewLoader(pdb, cfg)
}

// ---- crash-consistent write path ----

// Write-path types: the loader applies logical operation batches through
// a write intent log and publishes each batch as a new immutable epoch;
// concurrent queries keep reading their admission-time snapshot
// (Result.Epoch reports which).
type (
	// Op is one logical write operation in a batch (Loader.Apply).
	Op = bulkload.Op
	// OpKind distinguishes insert, delete, and update operations.
	OpKind = bulkload.OpKind
	// Commit summarizes one applied batch: its published epoch and the
	// stored/removed/rewritten copy counts.
	Commit = bulkload.Commit
	// RecoveryReport summarizes a Loader.Recover run: pending intents
	// replayed and torn rows discarded.
	RecoveryReport = bulkload.RecoveryReport
	// WriteMetrics meters the write path (Loader.Metrics): batches,
	// logical ops, stored copies, crashes, replays, write amplification.
	WriteMetrics = trace.WriteMetrics
	// Version is one immutable published epoch of a partitioned table.
	Version = table.Version
	// DBSnapshot is a database-wide pinned epoch across all tables.
	DBSnapshot = table.DBSnapshot
)

// Operation kinds.
const (
	OpInsert = bulkload.OpInsert
	OpDelete = bulkload.OpDelete
	OpUpdate = bulkload.OpUpdate
)

// Write-path sentinel errors.
var (
	// ErrWriteCrashed marks a write batch killed mid-flight by fault
	// injection; the store is torn until Loader.Recover runs.
	ErrWriteCrashed = fault.ErrWriteCrashed
	// ErrNeedRecovery gates writes on a torn loader: every Apply fails
	// with it until Recover has rolled back and replayed the intent log.
	ErrNeedRecovery = bulkload.ErrNeedRecovery
)

// InsertOp builds an insert operation for Loader.Apply.
func InsertOp(tbl string, row Tuple) Op { return bulkload.Insert(tbl, row) }

// DeleteOp builds a delete-by-column-values operation for Loader.Apply.
func DeleteOp(tbl string, cols []string, vals Tuple) Op {
	return bulkload.Delete(tbl, cols, vals)
}

// UpdateOp builds an update operation for Loader.Apply: rows matching
// cols=vals get setCol overwritten with setVal.
func UpdateOp(tbl string, cols []string, vals Tuple, setCol string, setVal int64) Op {
	return bulkload.Update(tbl, cols, vals, setCol, setVal)
}

// VerifyStore checks every stored tuple copy against the partitioning
// configuration: untorn partitions, dup/hasRef accounting, placement
// justified by the scheme (partition indexes cover all stored partnered
// keys), and logical row counters. The write path re-establishes these
// invariants after every recovery; VerifyStore is the independent
// witness that it did.
func VerifyStore(pdb *PartitionedDatabase, cfg *Config) error {
	return check.VerifyStore(pdb, cfg)
}

// ---- benchmark substrates ----

// Benchmark substrate types.
type (
	// TPCH is a generated TPC-H database with its 22 queries.
	TPCH = tpch.TPCH
	// TPCDS is a generated TPC-DS database.
	TPCDS = tpcds.TPCDS
)

// GenerateTPCH builds a deterministic TPC-H database at the given scale
// factor (SF 1 = official cardinalities; experiments use reduced SF).
func GenerateTPCH(sf float64, seed int64) *TPCH { return tpch.Generate(sf, seed) }

// GenerateTPCDS builds a deterministic, Zipf-skewed TPC-DS database.
func GenerateTPCDS(sf float64, seed int64) *TPCDS { return tpcds.Generate(sf, seed) }

// TPCHWorkload returns the 22 TPC-H queries as workload specs for
// WorkloadDriven.
func TPCHWorkload() []Query { return tpch.Workload() }

// TPCDSWorkload returns the 99 TPC-DS queries (one spec per SPJA block)
// as workload specs for WorkloadDriven.
func TPCDSWorkload() []Query { return tpcds.Workload() }

// TPCHQueryNames lists the 22 TPC-H query names in order.
func TPCHQueryNames() []string { return append([]string(nil), tpch.QueryNames...) }

// FilterWorkload removes (replicated) tables from workload query graphs.
func FilterWorkload(w []Query, excluded []string) []Query {
	return design.FilterWorkload(w, excluded)
}

// FromMoney / ToMoney / FromDate helpers re-exported for data loading.
var (
	FromMoney = value.FromMoney
	ToMoney   = value.ToMoney
	FromDate  = value.FromDate
	ToDate    = value.ToDate
	FromFloat = value.FromFloat
	ToFloat   = value.ToFloat
)
