// Command prefquery runs one TPC-H query against a chosen partitioning
// variant, printing the rewritten physical plan (EXPLAIN with the
// Dup/Part properties of Section 2.2), the result sample, and the
// execution telemetry.
//
// Usage:
//
//	prefquery -q Q3                      # Q3 on the SD design
//	prefquery -q Q9 -variant CP          # compare against classical
//	prefquery -q Q5 -variant SD-paper -explain-only
//	prefquery -q Q4 -no-opt              # disable the Section 2.2 optimizations
//	prefquery -q Q3 -explain             # execute and print EXPLAIN ANALYZE
//	prefquery -q Q3 -trace-json t.json   # dump the span tree as JSON
//	prefquery -q Q9 -timeout 50ms        # deadline-bound execution
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"pref/internal/bench"
	"pref/internal/design"
	"pref/internal/engine"
	"pref/internal/partition"
	"pref/internal/plan"
	"pref/internal/tpch"
	"pref/internal/trace"
)

func main() {
	var (
		query       = flag.String("q", "Q3", "TPC-H query name (Q1..Q22)")
		variant     = flag.String("variant", "SD", "partitioning variant: CP | SD | SD-paper | SD-noRed | WD | AllHashed | AllReplicated")
		cfgPath     = flag.String("config", "", "load the partitioning configuration from a JSON file (overrides -variant)")
		sf          = flag.Float64("sf", 0.01, "TPC-H scale factor")
		parts       = flag.Int("parts", 10, "number of partitions")
		seed        = flag.Int64("seed", 42, "generator seed")
		explainOnly = flag.Bool("explain-only", false, "print the plan without executing")
		explain     = flag.Bool("explain", false, "execute with tracing and print EXPLAIN ANALYZE (per-operator, per-node actuals)")
		traceJSON   = flag.String("trace-json", "", "execute with tracing and write the span tree as JSON to this file (- for stdout)")
		noOpt       = flag.Bool("no-opt", false, "disable the dup/hasRef optimizations and pruning")
		maxRows     = flag.Int("rows", 10, "result rows to print")
		timeout     = flag.Duration("timeout", 0, "query deadline; expiry exits non-zero with the typed deadline error (0 = none)")
	)
	flag.Parse()

	if err := run(*query, *variant, *cfgPath, *sf, *parts, *seed, *explainOnly, *noOpt, *maxRows, *explain, *traceJSON, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "prefquery:", err)
		if errors.Is(err, engine.ErrDeadlineExceeded) {
			// Distinct exit code for deadline expiry: scripts driving the
			// deadline-propagation path can tell a kill from a plain error.
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(query, variant, cfgPath string, sf float64, parts int, seed int64, explainOnly, noOpt bool, maxRows int, explain bool, traceJSON string, timeout time.Duration) error {
	t := tpch.Generate(sf, seed)
	var v *bench.Variant
	if cfgPath != "" {
		data, err := os.ReadFile(cfgPath)
		if err != nil {
			return err
		}
		var cfg partition.Config
		if err := json.Unmarshal(data, &cfg); err != nil {
			return err
		}
		if err := cfg.Validate(t.DB.Schema); err != nil {
			return err
		}
		v = bench.SingleGroupVariant("custom:"+cfgPath, &cfg)
		variant = v.Name
	} else {
		vs, err := bench.TPCHVariants(t, parts)
		if err != nil {
			return err
		}
		var ok bool
		v, ok = vs[variant]
		if !ok {
			return fmt.Errorf("unknown variant %q", variant)
		}
	}
	m, err := bench.Materialize(v, t.DB)
	if err != nil {
		return err
	}
	gi := v.RouteFor(query)
	cfg := v.Groups[gi].Config
	fmt.Printf("%s on %s (group %d, %d partitions, DL=%.2f DR=%.2f)\n\n",
		query, variant, gi, parts, m.DL, m.DR)

	opt := plan.Options{Sizes: design.SizesOf(t.DB)}
	if noOpt {
		opt.DisableHasRefOpt = true
		opt.DisableDupIndex = true
		opt.DisablePruning = true
	}
	q, err := t.QueryErr(query)
	if err != nil {
		return err
	}
	rw, err := plan.Rewrite(q, t.DB.Schema, cfg, opt)
	if err != nil {
		return err
	}
	fmt.Println("physical plan:")
	fmt.Print(rw.Explain())
	if explainOnly {
		return nil
	}

	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start := time.Now()
	res, err := engine.ExecuteCtx(ctx, rw, m.PDBs[gi], engine.ExecOptions{Trace: explain || traceJSON != ""})
	if err != nil {
		return err
	}
	wall := time.Since(start)
	res.SortRows()

	fmt.Printf("\n%d result rows", len(res.Rows))
	if len(res.Rows) > maxRows {
		fmt.Printf(" (showing %d)", maxRows)
	}
	fmt.Println(":")
	names := res.Schema.Names()
	fmt.Printf("  %v\n", names)
	for i, row := range res.Rows {
		if i >= maxRows {
			break
		}
		fmt.Printf("  %v\n", []int64(row))
	}

	if explain {
		fmt.Println("\nEXPLAIN ANALYZE:")
		fmt.Print(res.Trace.Render(trace.RenderOptions{Nodes: true}))
	}
	if traceJSON != "" {
		data, err := res.Trace.JSON()
		if err != nil {
			return err
		}
		if traceJSON == "-" {
			fmt.Println(string(data))
		} else if err := os.WriteFile(traceJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}

	cost := engine.DefaultCostModel()
	fmt.Printf("\ntelemetry: %d bytes shipped, %d rows shipped, %d repartitions, %d broadcasts\n",
		res.Stats.BytesShipped, res.Stats.RowsShipped, res.Stats.Repartitions, res.Stats.Broadcasts)
	fmt.Printf("           %d rows processed (max node %d)\n",
		res.Stats.RowsProcessed, res.Stats.MaxNodeRows)
	fmt.Printf("time:      wall %v, simulated cluster %v\n", wall.Round(time.Microsecond), cost.Simulate(res.Stats))
	return nil
}
