// Command prefserve runs the multi-tenant serving layer as an HTTP
// server: prepared TPC-H queries over one partitioning variant, streamed
// as NDJSON, with the admission ladder's typed rejections mapped onto
// HTTP status codes (429 + Retry-After for quota/shed/queue, 504 for
// deadline kills, 503 while draining).
//
// Usage:
//
//	prefserve                                # SD design on :8080
//	prefserve -variant AllReplicated -parts 4
//	prefserve -tenants gold:4,silver:2,bronze:1:200:20
//	prefserve -timeout 500ms                 # default per-query deadline
//
//	curl 'localhost:8080/query?tenant=gold&q=Q3'
//	curl 'localhost:8080/query?tenant=bronze&q=Q1&timeout=50ms'
//	curl localhost:8080/metrics
//
// SIGINT/SIGTERM drains gracefully: new submissions are rejected, in-
// flight queries finish (bounded by -drain, then forcibly cancelled), and
// the process exits with no leaked goroutines.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pref/internal/bench"
	"pref/internal/engine"
	"pref/internal/plan"
	"pref/internal/serve"
	"pref/internal/tpch"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:8080", "listen address")
		variant  = flag.String("variant", "SD", "partitioning variant: CP | SD | SD-paper | SD-noRed | AllHashed | AllReplicated")
		sf       = flag.Float64("sf", 0.01, "TPC-H scale factor")
		parts    = flag.Int("parts", 10, "number of partitions")
		seed     = flag.Int64("seed", 42, "generator seed")
		tenants  = flag.String("tenants", "gold:4,silver:2,bronze:1", "tenant list: name:weight[:rate[:burst]],...")
		slots    = flag.Int("slots", 8, "max concurrently served queries")
		queueTO  = flag.Duration("queue-timeout", time.Second, "weighted-fair queue wait bound")
		shed     = flag.Float64("shed", 1.5, "load threshold above which cost-priced shedding starts")
		retries  = flag.Int("retries", 3, "max execution attempts per query")
		deadline = flag.Duration("timeout", 0, "default per-query deadline when the client sends none (0 = none)")
		drain    = flag.Duration("drain", 10*time.Second, "graceful drain bound on shutdown")
	)
	flag.Parse()
	if err := run(*addr, *variant, *sf, *parts, *seed, *tenants, *slots, *queueTO, *shed, *retries, *deadline, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "prefserve:", err)
		os.Exit(1)
	}
}

func run(addr, variant string, sf float64, parts int, seed int64, tenantSpec string,
	slots int, queueTO time.Duration, shed float64, retries int, deadline, drain time.Duration) error {
	tcs, err := parseTenants(tenantSpec)
	if err != nil {
		return err
	}
	t := tpch.Generate(sf, seed)
	vs, err := bench.TPCHVariants(t, parts)
	if err != nil {
		return err
	}
	v, ok := vs[variant]
	if !ok {
		return fmt.Errorf("unknown variant %q", variant)
	}
	if len(v.Groups) != 1 {
		return fmt.Errorf("variant %q has %d groups; prefserve serves single-group variants", variant, len(v.Groups))
	}
	m, err := bench.Materialize(v, t.DB)
	if err != nil {
		return err
	}
	queries := make(map[string]func() plan.Node, len(tpch.QueryNames))
	for _, q := range tpch.QueryNames {
		q := q
		queries[q] = func() plan.Node { return t.Query(q) }
	}
	s, err := serve.NewServer(serve.Options{
		PDB:           m.PDBs[0],
		Config:        v.Groups[0].Config,
		Queries:       queries,
		Tenants:       tcs,
		MaxConcurrent: slots,
		QueueTimeout:  queueTO,
		ShedThreshold: shed,
		MaxAttempts:   retries,
	})
	if err != nil {
		return err
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		handleQuery(s, deadline, w, r)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Metrics())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	hs := &http.Server{Addr: addr, Handler: mux}

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Printf("prefserve: serving %s (%d partitions, %d tenants, %d queries) on http://%s\n",
		variant, parts, len(tcs), len(queries), addr)

	select {
	case err := <-errCh:
		return err
	case <-sigCtx.Done():
	}
	fmt.Fprintf(os.Stderr, "prefserve: draining (bound %v)...\n", drain)
	dctx, dcancel := context.WithTimeout(context.Background(), drain)
	defer dcancel()
	closeErr := s.Close(dctx)
	hs.Shutdown(dctx)
	if closeErr != nil {
		fmt.Fprintf(os.Stderr, "prefserve: drain forced: %v\n", closeErr)
	} else {
		fmt.Fprintln(os.Stderr, "prefserve: drained cleanly")
	}
	return nil
}

// handleQuery streams one prepared query as NDJSON: a header object, then
// one int64 array per row. Errors before the first chunk map to HTTP
// status codes; a mid-stream failure is delivered as a final error line
// (the status line has already been sent).
func handleQuery(s *serve.Server, defaultDeadline time.Duration, w http.ResponseWriter, r *http.Request) {
	tenant := r.URL.Query().Get("tenant")
	query := r.URL.Query().Get("q")
	ctx := r.Context()
	d := defaultDeadline
	if ts := r.URL.Query().Get("timeout"); ts != "" {
		var err error
		if d, err = time.ParseDuration(ts); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad timeout: %w", err))
			return
		}
	}
	if d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	st, err := s.Stream(ctx, tenant, query)
	if err != nil {
		status, hdr := statusOf(err)
		for k, v := range hdr {
			w.Header().Set(k, v)
		}
		httpError(w, status, err)
		return
	}
	defer st.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Pref-Epoch", strconv.FormatInt(st.Epoch, 10))
	w.Header().Set("X-Pref-Attempts", strconv.Itoa(st.Attempts))
	w.Header().Set("X-Pref-Cache-Hit", strconv.FormatBool(st.CacheHit))
	enc := json.NewEncoder(w)
	enc.Encode(map[string]any{
		"schema": st.Schema.Names(), "epoch": st.Epoch,
		"attempts": st.Attempts, "cache_hit": st.CacheHit,
		"latency_us": st.Latency.Microseconds(),
	})
	flusher, _ := w.(http.Flusher)
	for {
		rows, err := st.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				enc.Encode(map[string]string{"error": err.Error()})
			}
			break
		}
		for _, row := range rows {
			enc.Encode([]int64(row))
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// statusOf maps the serving layer's typed error taxonomy onto HTTP:
// ladder rejections are 429 Too Many Requests with a Retry-After hint
// (503 while draining), deadline kills are 504, unknown names 400/404.
func statusOf(err error) (int, map[string]string) {
	var rej *serve.RejectedError
	switch {
	case errors.As(err, &rej):
		if rej.Stage == "closed" {
			return http.StatusServiceUnavailable, nil
		}
		hdr := map[string]string{}
		if rej.RetryAfter > 0 {
			secs := int(rej.RetryAfter / time.Second)
			if secs < 1 {
				secs = 1
			}
			hdr["Retry-After"] = strconv.Itoa(secs)
		}
		return http.StatusTooManyRequests, hdr
	case errors.Is(err, engine.ErrDeadlineExceeded):
		return http.StatusGatewayTimeout, nil
	case errors.Is(err, serve.ErrUnknownQuery):
		return http.StatusNotFound, nil
	case errors.Is(err, serve.ErrUnknownTenant):
		return http.StatusBadRequest, nil
	case errors.Is(err, serve.ErrServerClosed):
		return http.StatusServiceUnavailable, nil
	default:
		return http.StatusInternalServerError, nil
	}
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// parseTenants parses name:weight[:rate[:burst]],... into tenant configs.
func parseTenants(spec string) ([]serve.TenantConfig, error) {
	var out []serve.TenantConfig
	for _, item := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(item), ":")
		if fields[0] == "" {
			return nil, fmt.Errorf("bad tenant spec %q", item)
		}
		tc := serve.TenantConfig{Name: fields[0]}
		vals := make([]float64, 0, 3)
		for _, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("bad tenant spec %q: %w", item, err)
			}
			vals = append(vals, v)
		}
		if len(vals) > 0 {
			tc.Weight = vals[0]
		}
		if len(vals) > 1 {
			tc.Rate = vals[1]
		}
		if len(vals) > 2 {
			tc.Burst = vals[2]
		}
		out = append(out, tc)
	}
	return out, nil
}
