// Command prefcheck runs the internal/check static verifier offline: it
// builds a partitioning design (a named TPC-H variant or a JSON config),
// verifies the design itself, then rewrites every TPC-H query against it
// and re-proves the Section 2.2 invariants of each physical plan —
// property-algebra soundness, locality of every hash join, duplicate
// freedom, and slice-aliasing hygiene. No data is generated beyond the
// catalog and no query is executed, so it is cheap enough to run in CI.
//
// Usage:
//
//	prefcheck                          # all 22 queries against the SD design
//	prefcheck -variant WD -parts 20    # the workload-driven design
//	prefcheck -q Q5 -v                 # one query, printing the plan
//	prefcheck -config custom.json      # a hand-written configuration
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pref/internal/bench"
	"pref/internal/check"
	"pref/internal/design"
	"pref/internal/partition"
	"pref/internal/plan"
	"pref/internal/tpch"
)

func main() {
	var (
		variant = flag.String("variant", "SD", "partitioning variant: CP | SD | SD-paper | SD-noRed | WD | AllHashed | AllReplicated")
		cfgPath = flag.String("config", "", "load the partitioning configuration from a JSON file (overrides -variant)")
		query   = flag.String("q", "", "verify a single TPC-H query (default: all 22)")
		sf      = flag.Float64("sf", 0.001, "TPC-H scale factor (tiny default: only the catalog matters)")
		parts   = flag.Int("parts", 10, "number of partitions")
		seed    = flag.Int64("seed", 42, "generator seed")
		noOpt   = flag.Bool("no-opt", false, "disable the dup/hasRef optimizations and pruning")
		verbose = flag.Bool("v", false, "print each verified plan")
	)
	flag.Parse()

	if err := run(*variant, *cfgPath, *query, *sf, *parts, *seed, *noOpt, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "prefcheck:", err)
		os.Exit(1)
	}
}

func run(variant, cfgPath, query string, sf float64, parts int, seed int64, noOpt, verbose bool) error {
	t := tpch.Generate(sf, seed)
	var v *bench.Variant
	if cfgPath != "" {
		data, err := os.ReadFile(cfgPath)
		if err != nil {
			return err
		}
		var cfg partition.Config
		if err := json.Unmarshal(data, &cfg); err != nil {
			return err
		}
		v = bench.SingleGroupVariant("custom:"+cfgPath, &cfg)
		variant = v.Name
	} else {
		vs, err := bench.TPCHVariants(t, parts)
		if err != nil {
			return err
		}
		var ok bool
		v, ok = vs[variant]
		if !ok {
			return fmt.Errorf("unknown variant %q", variant)
		}
	}

	// First the designs themselves: every group's configuration must be
	// well-formed (acyclic PREF chains, partitioned seeds, known columns,
	// equi-join-compatible predicate types).
	bad := 0
	for _, g := range v.Groups {
		if err := check.VerifyDesign(t.DB.Schema, g.Config); err != nil {
			fmt.Printf("design %s/%s: FAIL\n%v\n", variant, g.Name, indent(err))
			bad++
		} else if verbose {
			fmt.Printf("design %s/%s: ok\n", variant, g.Name)
		}
	}

	queries := tpch.QueryNames
	if query != "" {
		queries = []string{query}
	}
	opt := plan.Options{Sizes: design.SizesOf(t.DB)}
	if noOpt {
		opt.DisableHasRefOpt = true
		opt.DisableDupIndex = true
		opt.DisablePruning = true
	}

	for _, name := range queries {
		q, err := t.QueryErr(name)
		if err != nil {
			return err
		}
		cfg := v.Groups[v.RouteFor(name)].Config
		rw, err := plan.Rewrite(q, t.DB.Schema, cfg, opt)
		if err != nil {
			fmt.Printf("%-4s rewrite: FAIL: %v\n", name, err)
			bad++
			continue
		}
		if err := check.Verify(rw); err != nil {
			fmt.Printf("%-4s verify: FAIL\n%v\n", name, indent(err))
			bad++
			continue
		}
		if verbose {
			fmt.Printf("%-4s ok\n%s", name, rw.Explain())
		} else {
			fmt.Printf("%-4s ok\n", name)
		}
	}

	if bad > 0 {
		return fmt.Errorf("%d check(s) failed on variant %s", bad, variant)
	}
	fmt.Printf("all checks passed: %d queries on %s (%d partitions)\n", len(queries), variant, parts)
	return nil
}

func indent(err error) string {
	out := ""
	for _, v := range check.ViolationsOf(err) {
		out += "    " + v.Error() + "\n"
	}
	if out == "" {
		out = "    " + err.Error() + "\n"
	}
	return out
}
