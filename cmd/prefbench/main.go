// Command prefbench regenerates every table and figure of the paper's
// evaluation (Section 5) and prints them as aligned text tables with the
// paper's reference values in the notes.
//
// Usage:
//
//	prefbench                    # run everything
//	prefbench -exp fig7          # one experiment
//	prefbench -exp table1,fig11a # several
//	prefbench -sf 0.02 -parts 10 # larger data
//	prefbench -exp fault         # degradation-vs-fault-probability sweep
//	prefbench -exp ops -q Q5     # per-operator breakdown of Q5 per variant
//	prefbench -exp hedge         # straggler tail latency, hedging off vs on
//	prefbench -exp soak          # cluster health-layer fault-schedule soak
//	prefbench -exp mixed -rw 1,4,16 # mixed soak across read/write ratios
//	prefbench -exp fig7 -crash 0.05 -down 2 # fig7 under injected faults
//	prefbench -exp serve         # multi-tenant serving SLO sweep
//	prefbench -exp fig7 -timeout 1ms # deadline-bound; exits 2 on expiry
//	prefbench -list              # available experiment ids
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"pref/internal/bench"
	"pref/internal/engine"
	"pref/internal/fault"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id(s), comma separated, or 'all'")
		sf     = flag.Float64("sf", 0.01, "TPC-H scale factor")
		dssf   = flag.Float64("dssf", 1.0, "TPC-DS scale factor")
		parts  = flag.Int("parts", 10, "number of partitions / nodes")
		seed   = flag.Int64("seed", 42, "generator seed")
		expand = flag.Bool("expand", false, "fig12: sweep every node count 1..100 instead of a coarse grid")
		query  = flag.String("q", "Q3", "ops: TPC-H query for the per-operator breakdown")
		rw     = flag.String("rw", "", "mixed: comma-separated reader counts to sweep the read/write ratio (e.g. 1,4,16)")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		jsonTo = flag.String("json", "", "directory to write BENCH_<experiment>.json artifacts into ('' = off)")

		crash     = flag.Float64("crash", 0, "fault: per-attempt work-unit crash probability")
		shipFail  = flag.Float64("shipfail", 0, "fault: per-attempt exchange-shipment failure probability")
		stragProb = flag.Float64("straggleprob", 0, "fault: straggler probability per work unit")
		straggle  = flag.Duration("straggle", 0, "fault: straggler delay (e.g. 5ms)")
		down      = flag.String("down", "", "fault: comma-separated permanently failed node ids")
		faultSeed = flag.Int64("faultseed", 1, "fault: injection seed")
		qtimeout  = flag.Duration("qtimeout", 0, "fault: per-query deadline (0 = none)")
		timeout   = flag.Duration("timeout", 0, "per-query deadline; expiry fails the experiment with the typed deadline error and a non-zero exit (alias of -qtimeout)")
	)
	flag.Parse()
	if *timeout > 0 {
		*qtimeout = *timeout
	}

	if *list {
		for _, id := range bench.ExperimentOrder {
			fmt.Println(id)
		}
		return
	}

	p := bench.DefaultParams()
	p.SF = *sf
	p.DSSF = *dssf
	p.Parts = *parts
	p.Seed = *seed
	p.Expand = *expand
	p.Query = *query

	readers, err := parseNodeList(*rw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prefbench: -rw: %v\n", err)
		os.Exit(1)
	}
	for _, n := range readers {
		if n < 1 {
			fmt.Fprintf(os.Stderr, "prefbench: -rw: reader count %d < 1\n", n)
			os.Exit(1)
		}
	}
	p.MixedReaders = readers

	downNodes, err := parseNodeList(*down)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prefbench: -down: %v\n", err)
		os.Exit(1)
	}
	if *crash > 0 || *shipFail > 0 || *stragProb > 0 || len(downNodes) > 0 || *qtimeout > 0 {
		p.Fault = &fault.Policy{
			Seed:           *faultSeed,
			DownNodes:      downNodes,
			CrashProb:      *crash,
			ShipFailProb:   *shipFail,
			StragglerProb:  *stragProb,
			StragglerDelay: *straggle,
			Timeout:        *qtimeout,
		}
	}

	ids := bench.ExperimentOrder
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	failed := false
	deadlineHit := false
	for _, id := range ids {
		id = strings.TrimSpace(id)
		fn, ok := bench.Experiments[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "prefbench: unknown experiment %q (use -list)\n", id)
			failed = true
			continue
		}
		start := time.Now()
		r, err := fn(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prefbench: %s: %v\n", id, err)
			failed = true
			deadlineHit = deadlineHit || errors.Is(err, engine.ErrDeadlineExceeded)
			continue
		}
		elapsed := time.Since(start)
		fmt.Print(r.String())
		fmt.Printf("(%s in %v)\n\n", id, elapsed.Round(time.Millisecond))
		if *jsonTo != "" {
			if err := writeJSON(*jsonTo, r, elapsed); err != nil {
				fmt.Fprintf(os.Stderr, "prefbench: %s: %v\n", id, err)
				failed = true
			}
		}
	}
	if deadlineHit {
		// Distinct exit code for deadline expiry, as in prefquery.
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}

// writeJSON emits one BENCH_<id>.json artifact for CI trending.
func writeJSON(dir string, r *bench.Report, elapsed time.Duration) error {
	data, err := r.JSON(elapsed)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+r.ID+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", path)
	return nil
}

// parseNodeList parses a comma-separated int list (-down node ids, -rw
// reader counts).
func parseNodeList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
