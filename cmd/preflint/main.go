// Command preflint runs the repository's custom analyzers (internal/lint)
// over the module and exits nonzero if any diagnostic fires. It is the CI
// companion to go vet: vet checks generic Go mistakes, preflint checks
// this codebase's own invariants — panic policy, context threading,
// Prop slice aliasing, partition-state ownership, atomic access
// discipline, goroutine joining, and ship accounting — plus the
// CFG/typestate protocol analyzers built on internal/lint/cfg:
// publish ordering, snapshot read discipline, the bulk-load intent
// protocol, guard-field happens-before, batch immutability, and the
// interprocedural batch ownership/lifetime typestate.
//
// Usage:
//
//	preflint [flags] [dir...]   lint the packages rooted at each dir (default ".")
//	preflint -list              print the analyzers and their docs
//
// Flags:
//
//	-json                  emit findings as a JSON report on stdout, with
//	                       per-analyzer wall time under "timings_ms"
//	-sarif                 emit findings as SARIF 2.1.0 on stdout
//	-only NAMES            run only these analyzers (comma-separated)
//	-skip NAMES            run all but these analyzers (comma-separated)
//	-baseline FILE         suppress findings recorded in FILE
//	-write-baseline FILE   snapshot current findings into FILE and exit 0
//	-strict                fail (exit 1) if the baseline itself is non-empty,
//	                       or if any baseline entry is stale
//
// Exit status: 0 clean, 1 findings (or a -strict violation), 2 operational
// error (unparseable package, bad flag, unknown analyzer name, unreadable
// baseline).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pref/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	only := flag.String("only", "", "comma-separated analyzers to run (default: all)")
	skip := flag.String("skip", "", "comma-separated analyzers to leave out")
	baselinePath := flag.String("baseline", "", "baseline file of grandfathered findings")
	writeBaseline := flag.String("write-baseline", "", "write current findings to this baseline file and exit")
	strict := flag.Bool("strict", false, "fail if the baseline is non-empty or has stale entries")
	flag.Parse()

	analyzers, err := lint.SelectAnalyzers(lint.Analyzers(), *only, *skip)
	if err != nil {
		fatal(err)
	}
	if *list {
		width := 0
		for _, a := range analyzers {
			if len(a.Name) > width {
				width = len(a.Name)
			}
		}
		for _, a := range analyzers {
			fmt.Printf("%-*s %s\n", width, a.Name, a.Doc)
		}
		return
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "preflint: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}

	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var diags []lint.Diagnostic
	timings := lint.Timings{}
	for _, root := range roots {
		// Accept the conventional "./..." spelling so CI can invoke
		// preflint like any go tool.
		root = filepath.Clean(root)
		if base := filepath.Base(root); base == "..." {
			root = filepath.Dir(root)
		}
		dirs, err := lint.PackageDirs(root)
		if err != nil {
			fatal(err)
		}
		for _, dir := range dirs {
			ds, err := lint.RunDirTimed(dir, analyzers, timings)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", dir, err))
			}
			diags = append(diags, ds...)
		}
	}

	if *writeBaseline != "" {
		if err := lint.WriteBaseline(*writeBaseline, diags); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "preflint: wrote %d finding(s) to %s\n", len(diags), *writeBaseline)
		return
	}

	baseline, err := lint.LoadBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	fresh, stale := baseline.Filter(diags)

	switch {
	case *jsonOut:
		if err := lint.WriteJSON(os.Stdout, fresh, timings); err != nil {
			fatal(err)
		}
	case *sarifOut:
		if err := lint.WriteSARIF(os.Stdout, analyzers, fresh); err != nil {
			fatal(err)
		}
	default:
		for _, d := range fresh {
			fmt.Println(d)
		}
	}

	failed := len(fresh) > 0
	if *strict {
		if n := len(baseline.Findings); n > 0 {
			fmt.Fprintf(os.Stderr, "preflint: strict: baseline carries %d grandfathered finding(s); fix them and empty the baseline\n", n)
			failed = true
		}
		for _, e := range stale {
			fmt.Fprintf(os.Stderr, "preflint: strict: stale baseline entry (already fixed): %s [%s] %s\n", e.File, e.Analyzer, e.Message)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "preflint: %v\n", err)
	os.Exit(2)
}
