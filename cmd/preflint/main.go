// Command preflint runs the repository's custom analyzers (internal/lint)
// over the module and exits nonzero if any diagnostic fires. It is the CI
// companion to go vet: vet checks generic Go mistakes, preflint checks
// this codebase's own invariants (panic policy, context threading in the
// execution path, Prop slice aliasing).
//
// Usage:
//
//	preflint [dir...]        lint the packages rooted at each dir (default ".")
//	preflint -list           print the analyzers and their docs
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"pref/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	failed := false
	for _, root := range roots {
		// Accept the conventional "./..." spelling so CI can invoke
		// preflint like any go tool.
		root = filepath.Clean(root)
		if base := filepath.Base(root); base == "..." {
			root = filepath.Dir(root)
		}
		dirs, err := packageDirs(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "preflint: %v\n", err)
			os.Exit(2)
		}
		for _, dir := range dirs {
			diags, err := lint.RunDir(dir, analyzers)
			if err != nil {
				fmt.Fprintf(os.Stderr, "preflint: %s: %v\n", dir, err)
				os.Exit(2)
			}
			for _, d := range diags {
				fmt.Println(d)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

// packageDirs walks root and returns every directory containing at least
// one non-test .go file, skipping VCS metadata and testdata trees.
func packageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", "vendor":
				return filepath.SkipDir
			}
			return nil
		}
		if filepath.Ext(path) != ".go" {
			return nil
		}
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	})
	return dirs, err
}
