// Command prefdesign runs the automated partitioning design algorithms of
// the paper on a TPC-H or TPC-DS database and prints the resulting
// configuration with its data-locality and data-redundancy.
//
// Usage:
//
//	prefdesign -benchmark tpch -algo sd -parts 10 -sf 0.01
//	prefdesign -benchmark tpcds -algo wd -parts 10
//	prefdesign -benchmark tpch -algo sd -no-redundancy -sample 0.1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pref"
	"pref/internal/design"
	"pref/internal/tpcds"
	"pref/internal/tpch"
)

func main() {
	var (
		benchmark = flag.String("benchmark", "tpch", "schema/data to design for: tpch | tpcds")
		algo      = flag.String("algo", "sd", "design algorithm: sd (schema-driven) | wd (workload-driven)")
		parts     = flag.Int("parts", 10, "number of partitions / nodes")
		sf        = flag.Float64("sf", 0.01, "TPC-H scale factor (micro scale)")
		dssf      = flag.Float64("dssf", 1.0, "TPC-DS scale factor (micro scale)")
		seed      = flag.Int64("seed", 42, "generator seed")
		sample    = flag.Float64("sample", 1.0, "histogram sampling rate in (0,1]")
		noRed     = flag.Bool("no-redundancy", false, "forbid redundancy on all designed tables (SD only)")
		keepSmall = flag.Bool("keep-small", false, "keep small tables in the design instead of replicating them")
		out       = flag.String("o", "", "write the resulting configuration(s) as JSON to this file")
	)
	flag.Parse()

	if err := run(*benchmark, *algo, *parts, *sf, *dssf, *seed, *sample, *noRed, *keepSmall, *out); err != nil {
		fmt.Fprintln(os.Stderr, "prefdesign:", err)
		os.Exit(1)
	}
}

func run(benchmark, algo string, parts int, sf, dssf float64, seed int64, sample float64, noRed, keepSmall bool, outPath string) error {
	var (
		db       *pref.Database
		small    []string
		workload []pref.Query
	)
	switch benchmark {
	case "tpch":
		t := tpch.Generate(sf, seed)
		db = t.DB
		small = tpch.SmallTables()
		workload = tpch.Workload()
	case "tpcds":
		t := tpcds.Generate(dssf, seed)
		db = t.DB
		small = tpcds.SmallTables()
		workload = tpcds.Workload()
	default:
		return fmt.Errorf("unknown benchmark %q", benchmark)
	}
	fmt.Printf("database: %s, %d tables, %d rows, %d partitions\n",
		benchmark, len(db.Schema.TableNames()), db.TotalRows(), parts)

	designDB := db
	if !keepSmall {
		designDB = db.Without(small...)
		fmt.Printf("replicating small tables: %s\n", strings.Join(small, ", "))
		workload = design.FilterWorkload(workload, small)
	}

	switch algo {
	case "sd":
		opt := pref.SDOptions{Parts: parts, SampleRate: sample, SampleSeed: seed}
		if noRed {
			opt.NoRedundancy = designDB.Schema.TableNames()
		}
		d, err := pref.SchemaDriven(designDB, opt)
		if err != nil {
			return err
		}
		fmt.Printf("\nschema-driven design (seeds: %s)\n%s", strings.Join(d.Seeds, ", "), d.Config)
		fmt.Printf("\ndata-locality DL = %.4f\n", d.DL)
		fmt.Printf("estimated data-redundancy DR = %.4f\n", d.Est.DR())

		cfg := d.Config.Clone()
		if !keepSmall {
			for _, tbl := range small {
				cfg.SetReplicated(tbl)
			}
		}
		pdb, err := pref.Apply(db, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("actual data-redundancy DR = %.4f (designed tables only: %.4f)\n",
			pdb.DataRedundancy(), actualDesignedDR(pdb, designDB))
		if outPath != "" {
			if err := writeJSON(outPath, cfg); err != nil {
				return err
			}
			fmt.Println("configuration written to", outPath)
		}

	case "wd":
		wd, err := pref.WorkloadDriven(designDB, workload, pref.WDOptions{
			Parts: parts, SampleRate: sample, SampleSeed: seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("\nworkload-driven design: %d query units → %d after containment merge → %d merged MASTs\n",
			wd.UnitsBeforeMerge, wd.UnitsAfterPhase1, len(wd.Groups))
		for i, g := range wd.Groups {
			fmt.Printf("\ngroup %d (%d queries: %s)\n%s",
				i, len(g.Queries), strings.Join(g.Queries, ", "), g.PC.Config)
		}
		dr, err := wd.EstimatedDR(design.SizesOf(designDB))
		if err != nil {
			return err
		}
		fmt.Printf("\nestimated global data-redundancy DR = %.4f\n", dr)
		if outPath != "" {
			cfgs := make([]*pref.Config, len(wd.Groups))
			for i, g := range wd.Groups {
				cfgs[i] = g.PC.Config
			}
			if err := writeJSON(outPath, cfgs); err != nil {
				return err
			}
			fmt.Println("group configurations written to", outPath)
		}

	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	return nil
}

// writeJSON marshals v (a Config or a slice of them) with indentation.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// actualDesignedDR reports redundancy over the designed (non-replicated)
// tables only.
func actualDesignedDR(pdb *pref.PartitionedDatabase, designDB *pref.Database) float64 {
	stored, orig := 0, 0
	for _, name := range designDB.Schema.TableNames() {
		stored += pdb.Tables[name].StoredRows()
		orig += designDB.Tables[name].Len()
	}
	if orig == 0 {
		return 0
	}
	return float64(stored)/float64(orig) - 1
}
