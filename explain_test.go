package pref_test

import (
	"strings"
	"testing"

	"pref"
)

// paperSD builds the paper's reported SD configuration for TPC-H through
// the facade: LINEITEM seed, PREF chains for orders/customer and
// partsupp/part, small tables replicated.
func paperSD(n int) *pref.Config {
	cfg := pref.NewConfig(n)
	cfg.SetHash("lineitem", "orderkey")
	cfg.SetPref("orders", "lineitem", []string{"orderkey"}, []string{"orderkey"})
	cfg.SetPref("customer", "orders", []string{"custkey"}, []string{"custkey"})
	cfg.SetPref("partsupp", "lineitem", []string{"partkey", "suppkey"}, []string{"partkey", "suppkey"})
	cfg.SetPref("part", "partsupp", []string{"partkey"}, []string{"partkey"})
	for _, tbl := range []string{"supplier", "nation", "region"} {
		cfg.SetReplicated(tbl)
	}
	return cfg
}

func allHashed(db *pref.TPCH, n int) *pref.Config {
	cfg := pref.NewConfig(n)
	for _, t := range db.DB.Schema.Tables() {
		cols := t.PK
		if len(cols) == 0 {
			cols = []string{t.Columns[0].Name}
		}
		cfg.SetHash(t.Name, cols...)
	}
	return cfg
}

// TestExplainShowsLocalityOnPrefChain is the acceptance criterion of the
// observability layer: on a PREF-chain design, EXPLAIN ANALYZE of a
// co-partitioned TPC-H join query (Q3: customer ⋈ orders ⋈ lineitem)
// must show every join span with zero shipped rows and no repartition
// spans at all, while the same query on AllHashed must show exchange
// spans that actually moved rows.
func TestExplainShowsLocalityOnPrefChain(t *testing.T) {
	db := pref.GenerateTPCH(0.002, 7)
	q := func() pref.PlanNode { return db.Query("Q3") }

	// PREF chain: joins local, exchanges only at the final gather.
	sd := paperSD(4)
	pdb, err := pref.Apply(db.DB, sd)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pref.Explain(q(), db.DB.Schema, sd, pdb)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("Explain returned no trace")
	}
	joins := 0
	res.Trace.Walk(func(ot *pref.OpTrace) {
		switch ot.Kind {
		case pref.KindJoin:
			joins++
			if ot.Totals.RowsShipped != 0 {
				t.Errorf("PREF chain: join span %q shipped %d rows, want 0", ot.Label, ot.Totals.RowsShipped)
			}
		case pref.KindRepartition, pref.KindBroadcast, pref.KindDistinctByValue:
			t.Errorf("PREF chain: unexpected exchange span %q (%s)", ot.Label, ot.Kind)
		}
	})
	if joins != 2 {
		t.Fatalf("Q3 trace has %d join spans, want 2", joins)
	}
	// The rendering itself must carry the evidence a user would read.
	out := res.Trace.Render(pref.TraceRenderOptions{HideWall: true})
	if !strings.Contains(out, "INNERJoin") || !strings.Contains(out, "shipped=0 rows/0B") {
		t.Fatalf("EXPLAIN ANALYZE output lacks local-join evidence:\n%s", out)
	}

	// AllHashed: the same query must put rows on the wire through
	// exchange operators.
	ah := allHashed(db, 4)
	pdbAH, err := pref.Apply(db.DB, ah)
	if err != nil {
		t.Fatal(err)
	}
	resAH, err := pref.Explain(q(), db.DB.Schema, ah, pdbAH)
	if err != nil {
		t.Fatal(err)
	}
	var shippedByExchanges int64
	exchanges := 0
	resAH.Trace.Walk(func(ot *pref.OpTrace) {
		if ot.Kind == pref.KindRepartition || ot.Kind == pref.KindBroadcast {
			exchanges++
			shippedByExchanges += ot.Totals.RowsShipped
		}
	})
	if exchanges == 0 || shippedByExchanges == 0 {
		t.Fatalf("AllHashed: expected exchange spans moving rows, got %d spans / %d rows",
			exchanges, shippedByExchanges)
	}

	// Same answer either way — the trace differs, the result must not.
	res.SortRows()
	resAH.SortRows()
	if len(res.Rows) == 0 || len(res.Rows) != len(resAH.Rows) {
		t.Fatalf("result divergence: PREF %d rows, AllHashed %d rows", len(res.Rows), len(resAH.Rows))
	}
}
