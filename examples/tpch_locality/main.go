// tpch_locality: run the schema-driven design algorithm on TPC-H and
// compare query execution against classical partitioning — the paper's
// Section 5.1 story at laptop scale.
//
// Run with: go run ./examples/tpch_locality
package main

import (
	"fmt"
	"log"
	"strings"

	"pref"
)

func main() {
	// A deterministic micro TPC-H: same schema, ratios and distributions
	// as dbgen, ~86k rows at SF 0.01.
	t := pref.GenerateTPCH(0.01, 42)
	db := t.DB
	const parts = 10
	small := []string{"nation", "region", "supplier"}

	// Classical partitioning: co-partition lineitem and orders on the
	// join key, replicate everything else.
	cp := pref.NewConfig(parts)
	cp.SetHash("lineitem", "orderkey")
	cp.SetHash("orders", "orderkey")
	for _, tbl := range []string{"customer", "part", "partsupp", "supplier", "nation", "region"} {
		cp.Set(&pref.TableScheme{Table: tbl, Method: pref.Replicated})
	}

	// Schema-driven PREF design over the non-small tables.
	d, err := pref.SchemaDriven(db.Without(small...), pref.SDOptions{Parts: parts})
	if err != nil {
		log.Fatal(err)
	}
	sd := d.Config.Clone()
	for _, tbl := range small {
		sd.Set(&pref.TableScheme{Table: tbl, Method: pref.Replicated})
	}
	fmt.Printf("schema-driven design (seed: %s, DL=%.2f, estimated DR=%.2f):\n%s\n",
		strings.Join(d.Seeds, ","), d.DL, d.Est.DR(), d.Config)

	cpPDB, err := pref.Apply(db, cp)
	if err != nil {
		log.Fatal(err)
	}
	sdPDB, err := pref.Apply(db, sd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("storage: CP %d rows (DR=%.2f)  vs  SD %d rows (DR=%.2f)\n\n",
		cpPDB.TotalStoredRows(), cpPDB.DataRedundancy(),
		sdPDB.TotalStoredRows(), sdPDB.DataRedundancy())

	// Execute a few representative queries under both designs.
	cost := pref.DefaultCostModel()
	fmt.Println("query   CP sim      SD sim      CP bytes    SD bytes")
	for _, name := range []string{"Q3", "Q5", "Q9", "Q10", "Q12"} {
		cpRes, err := pref.Run(t.Query(name), db.Schema, cp, cpPDB)
		if err != nil {
			log.Fatal(err)
		}
		sdRes, err := pref.Run(t.Query(name), db.Schema, sd, sdPDB)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %10v %11v %11d %11d\n", name,
			cost.Simulate(cpRes.Stats).Round(10e3), cost.Simulate(sdRes.Stats).Round(10e3),
			cpRes.Stats.BytesShipped, sdRes.Stats.BytesShipped)
	}
	fmt.Println("\nthe PREF design stores ~2.4x less than classical replication while")
	fmt.Println("keeping the fk joins node-local (run cmd/prefbench for all figures)")
}
