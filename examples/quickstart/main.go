// Quickstart: define a small schema, PREF-partition it, and run a
// co-located join — no remote data movement for the join, one shuffle
// avoided for the aggregation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pref"
)

func main() {
	// A two-table shop: users 1—N orders.
	s := pref.NewSchema("shop")
	s.MustAddTable(pref.MustTable("users", []pref.Column{
		{Name: "uid", Kind: pref.Int},
		{Name: "name", Kind: pref.Str},
		{Name: "country", Kind: pref.Str},
	}, "uid"))
	s.MustAddTable(pref.MustTable("orders", []pref.Column{
		{Name: "oid", Kind: pref.Int},
		{Name: "uid", Kind: pref.Int},
		{Name: "amount", Kind: pref.Money},
	}, "oid"))
	s.MustAddFK(pref.ForeignKey{
		Name: "fk_orders_users", FromTable: "orders", FromCols: []string{"uid"},
		ToTable: "users", ToCols: []string{"uid"}, ToIsUnique: true,
	})

	// Load some data.
	db := pref.NewDatabase(s)
	names := s.Table("users").Dict("name")
	countries := s.Table("users").Dict("country")
	for i := int64(0); i < 1000; i++ {
		db.Tables["users"].MustAppend(pref.Tuple{
			i, names.Code(fmt.Sprintf("user-%d", i)), countries.Code([]string{"DE", "US", "JP"}[i%3]),
		})
	}
	for i := int64(0); i < 8000; i++ {
		db.Tables["orders"].MustAppend(pref.Tuple{i, i % 1000, pref.FromMoney(float64(i%500) + 0.99)})
	}

	// Partition for a 4-node cluster: users hashed on uid, orders
	// PREF-partitioned by users on the join predicate — every order lands
	// with its user.
	cfg := pref.NewConfig(4)
	cfg.SetHash("users", "uid")
	cfg.SetPref("orders", "users", []string{"uid"}, []string{"uid"})
	pdb, err := pref.Apply(db, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned: users %d rows, orders %d rows (%d duplicates from PREF)\n",
		pdb.Tables["users"].StoredRows(), pdb.Tables["orders"].StoredRows(),
		pdb.Tables["orders"].DuplicateRows())

	// Revenue per country: the users⋈orders join is fully local.
	q := pref.Aggregate(
		pref.Join(pref.Scan("users", "u"), pref.Scan("orders", "o"),
			pref.Inner, []string{"u.uid"}, []string{"o.uid"}),
		[]string{"u.country"},
		pref.Sum(pref.Col("o.amount"), "revenue"),
		pref.Count("orders"),
	)
	res, err := pref.Run(q, s, cfg, pdb)
	if err != nil {
		log.Fatal(err)
	}
	res.SortRows()
	fmt.Println("\ncountry  revenue        orders")
	for _, row := range res.Rows {
		fmt.Printf("%-8s $%-12.2f %d\n",
			countries.String(row[0]), pref.ToMoney(row[1]), row[2])
	}
	// The users⋈orders join ran node-local thanks to PREF co-partitioning;
	// the single shuffle below is the final group-by on country.
	fmt.Printf("\nnetwork: %d bytes shipped, %d repartition (the group-by; the join was local)\n",
		res.Stats.BytesShipped, res.Stats.Repartitions)

	// Contrast: hash both tables on their primary keys and the join
	// itself must shuffle.
	naive := pref.NewConfig(4)
	naive.SetHash("users", "uid")
	naive.SetHash("orders", "oid")
	npdb, err := pref.Apply(db, naive)
	if err != nil {
		log.Fatal(err)
	}
	nres, err := pref.Run(q, s, naive, npdb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive hash-by-pk:  %d bytes shipped, %d repartitions\n",
		nres.Stats.BytesShipped, nres.Stats.Repartitions)
}
