// workload_design: run the workload-driven design algorithm on the 99
// TPC-DS queries and inspect the merge phases — the paper's Section 4
// pipeline (per-query MASTs → containment merge → cost-based merge).
//
// Run with: go run ./examples/workload_design
package main

import (
	"fmt"
	"log"
	"strings"

	"pref"
)

func main() {
	t := pref.GenerateTPCDS(1.0, 42)
	db := t.DB
	small := []string{"store", "call_center", "web_site", "warehouse", "reason",
		"ship_mode", "income_band", "web_page", "promotion"}

	workload := pref.FilterWorkload(pref.TPCDSWorkload(), small)
	fmt.Printf("TPC-DS: %d tables, %d rows; workload: %d SPJA blocks from 99 queries\n",
		len(db.Schema.TableNames()), db.TotalRows(), len(workload))

	wd, err := pref.WorkloadDriven(db.Without(small...), workload, pref.WDOptions{Parts: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmerging: %d query units → %d after containment merge → %d merged MASTs\n",
		wd.UnitsBeforeMerge, wd.UnitsAfterPhase1, len(wd.Groups))
	fmt.Println("(the paper reports 165 → 17 → 7 for its query encodings)")

	for i, g := range wd.Groups {
		tables := g.Tree.Nodes()
		fmt.Printf("\ngroup %d: %d queries over %d tables [%s]\n",
			i, len(g.Queries), len(tables), strings.Join(tables, ", "))
		fmt.Print(g.PC.Config)
	}

	// Each query routes to the group holding its tables with minimal
	// redundancy.
	fmt.Println("\nrouting samples:")
	for _, q := range []string{"q3", "q21", "q81", "q95"} {
		fmt.Printf("  %s → groups %v\n", q, wd.GroupsFor(q))
	}
}
