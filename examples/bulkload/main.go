// bulkload: incremental loading into a PREF-partitioned database with the
// partition index of Section 2.3 — plus the update/delete rules.
//
// Run with: go run ./examples/bulkload
package main

import (
	"fmt"
	"log"

	"pref"
)

func main() {
	s := pref.NewSchema("warehouse")
	s.MustAddTable(pref.MustTable("products", []pref.Column{
		{Name: "pid", Kind: pref.Int}, {Name: "price", Kind: pref.Money},
	}, "pid"))
	s.MustAddTable(pref.MustTable("sales", []pref.Column{
		{Name: "sid", Kind: pref.Int}, {Name: "pid", Kind: pref.Int}, {Name: "qty", Kind: pref.Int},
	}, "sid"))
	s.MustAddTable(pref.MustTable("reviews", []pref.Column{
		{Name: "rid", Kind: pref.Int}, {Name: "pid", Kind: pref.Int}, {Name: "stars", Kind: pref.Int},
	}, "rid"))

	// sales hashed; products PREF by the sales they appear in (the
	// incoming-fk case classical REF partitioning cannot express);
	// reviews PREF by products.
	cfg := pref.NewConfig(4)
	cfg.SetHash("sales", "sid")
	cfg.SetPref("products", "sales", []string{"pid"}, []string{"pid"})
	cfg.SetPref("reviews", "products", []string{"pid"}, []string{"pid"})

	db := pref.NewDatabase(s)
	pdb, err := pref.Apply(db, cfg) // empty database: start from scratch
	if err != nil {
		log.Fatal(err)
	}
	loader := pref.NewLoader(pdb, cfg)

	// Bulk load referenced-before-referencing: sales, then products, then
	// reviews. The loader resolves PREF targets via the partition index
	// (a value → partition-set hash index) instead of joining.
	for i := int64(0); i < 10000; i++ {
		if err := loader.Insert("sales", pref.Tuple{i, i % 500, 1 + i%5}); err != nil {
			log.Fatal(err)
		}
	}
	for p := int64(0); p < 600; p++ { // 100 products never sold → orphans
		if err := loader.Insert("products", pref.Tuple{p, pref.FromMoney(9.99 + float64(p))}); err != nil {
			log.Fatal(err)
		}
	}
	for r := int64(0); r < 2000; r++ {
		if err := loader.Insert("reviews", pref.Tuple{r, r % 600, 1 + r%5}); err != nil {
			log.Fatal(err)
		}
	}

	prod := pdb.Tables["products"]
	fmt.Printf("products: %d original rows, %d stored copies (%d PREF duplicates)\n",
		prod.OriginalRows, prod.StoredRows(), prod.DuplicateRows())
	fmt.Printf("partition-index lookups performed: %d (no join with sales was ever run)\n",
		loader.Lookups)

	// Updates apply to all copies; partitioning-predicate columns are
	// immutable (Section 2.3).
	n, err := loader.Update("products", []string{"pid"}, pref.Tuple{42}, "price", pref.FromMoney(1.23))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("updated price of product 42 on %d copies\n", n)
	if _, err := loader.Update("products", []string{"pid"}, pref.Tuple{42}, "pid", 77); err != nil {
		fmt.Println("updating a partitioning column is rejected:", err)
	}

	// Deletes fan out to every partition — but a referenced tuple cannot
	// be deleted out from under its PREF dependents: the loader rejects
	// the delete until the referencing tuples go first (leaf-first order).
	if _, err := loader.Delete("products", []string{"pid"}, pref.Tuple{42}); err != nil {
		fmt.Println("deleting a still-referenced product is rejected:", err)
	}
	gone, err := loader.Delete("reviews", []string{"pid"}, pref.Tuple{42})
	if err != nil {
		log.Fatal(err)
	}
	removed, err := loader.Delete("products", []string{"pid"}, pref.Tuple{42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deleted product 42 leaf-first: %d review copies, then %d product copies\n",
		gone, removed)

	// The loaded database answers queries like any partitioned database.
	q := pref.Aggregate(
		pref.Join(pref.Scan("products", "p"), pref.Scan("sales", "sl"),
			pref.Inner, []string{"p.pid"}, []string{"sl.pid"}),
		nil,
		pref.Count("sold_lines"),
	)
	res, err := pref.Run(q, s, cfg, pdb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("products⋈sales count = %d, shipped %d bytes (co-located join)\n",
		res.Rows[0][0], res.Stats.BytesShipped)
}
