package pref_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"pref"
)

// taxonomyServer builds a small serving stack through the public facade
// only: a micro TPC-H database under a schema-driven design, one prepared
// query, and a tenant with a nearly-exhausted quota.
func taxonomyServer(t *testing.T) (*pref.Server, *pref.TPCH) {
	t.Helper()
	db := pref.GenerateTPCH(0.002, 42)
	d, err := pref.SchemaDriven(db.DB.Without("nation", "region", "supplier"), pref.SDOptions{Parts: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := d.Config.Clone()
	for _, tbl := range []string{"nation", "region", "supplier"} {
		cfg.Set(&pref.TableScheme{Table: tbl, Method: pref.Replicated})
	}
	s, err := pref.NewServer(pref.ServeOptions{
		DB:     db.DB,
		Config: cfg,
		Queries: map[string]func() pref.PlanNode{
			"Q6": func() pref.PlanNode { return db.Query("Q6") },
		},
		Tenants: []pref.TenantConfig{
			{Name: "gold", Weight: 4},
			// One token, then a ~17-minute refill: the second submission
			// must be rejected by the quota rung.
			{Name: "capped", Weight: 1, Rate: 0.001, Burst: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, db
}

// TestErrorTaxonomy pins the serving layer's complete rejection taxonomy
// as observed through the pref facade: every rejection class is
// errors.Is-matchable against its exported sentinel, carries the typed
// *RejectedError where the admission ladder rejected it, and the
// sentinels stay pairwise distinct — in particular the client-deadline
// kill (ErrDeadlineExceeded) never collapses into the admission queue's
// own timeout (ErrAdmissionTimeout).
func TestErrorTaxonomy(t *testing.T) {
	s, _ := taxonomyServer(t)
	ctx := context.Background()

	// Unknown names.
	if _, err := s.Submit(ctx, "gold", "Q99"); !errors.Is(err, pref.ErrUnknownQuery) {
		t.Fatalf("unknown query err = %v, want ErrUnknownQuery", err)
	}
	if _, err := s.Submit(ctx, "nobody", "Q6"); !errors.Is(err, pref.ErrUnknownTenant) {
		t.Fatalf("unknown tenant err = %v, want ErrUnknownTenant", err)
	}

	// Quota rung: second submission under the capped tenant is rejected
	// with the typed RejectedError wrapping ErrQuotaExceeded.
	if _, err := s.Submit(ctx, "capped", "Q6"); err != nil {
		t.Fatalf("first capped submission: %v", err)
	}
	_, err := s.Submit(ctx, "capped", "Q6")
	if !errors.Is(err, pref.ErrQuotaExceeded) {
		t.Fatalf("quota err = %v, want ErrQuotaExceeded", err)
	}
	var rej *pref.RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("quota err %v is not a *RejectedError", err)
	}
	if rej.Stage != "quota" || rej.Tenant != "capped" || rej.RetryAfter <= 0 {
		t.Fatalf("quota rejection = %+v, want stage quota with Retry-After hint", rej)
	}

	// Deadline kill: typed ErrDeadlineExceeded, context.DeadlineExceeded
	// still matchable underneath, and NOT an admission timeout.
	dctx, cancel := context.WithTimeout(ctx, time.Nanosecond)
	defer cancel()
	_, err = s.Submit(dctx, "gold", "Q6")
	if !errors.Is(err, pref.ErrDeadlineExceeded) {
		t.Fatalf("deadline err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline err = %v does not unwrap to context.DeadlineExceeded", err)
	}
	if errors.Is(err, pref.ErrAdmissionTimeout) {
		t.Fatalf("deadline err %v matches ErrAdmissionTimeout: taxonomy collapsed", err)
	}

	// Drained server: submissions fail with ErrServerClosed.
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(ctx, "gold", "Q6"); !errors.Is(err, pref.ErrServerClosed) {
		t.Fatalf("closed err = %v, want ErrServerClosed", err)
	}

	// The sentinels are pairwise distinct: matching one never matches
	// another, so callers can price each class differently.
	sentinels := map[string]error{
		"ErrDeadlineExceeded": pref.ErrDeadlineExceeded,
		"ErrAdmissionTimeout": pref.ErrAdmissionTimeout,
		"ErrQuotaExceeded":    pref.ErrQuotaExceeded,
		"ErrOverloaded":       pref.ErrOverloaded,
		"ErrServerClosed":     pref.ErrServerClosed,
		"ErrUnknownTenant":    pref.ErrUnknownTenant,
		"ErrUnknownQuery":     pref.ErrUnknownQuery,
		"ErrNodeTripped":      pref.ErrNodeTripped,
		"ErrPartitionLost":    pref.ErrPartitionLost,
		"ErrAllNodesDown":     pref.ErrAllNodesDown,
	}
	for an, a := range sentinels {
		for bn, b := range sentinels {
			if an != bn && errors.Is(a, b) {
				t.Fatalf("%s matches %s: sentinels must stay distinct", an, bn)
			}
		}
	}
}
