// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (Section 5), plus the ablations DESIGN.md calls out.
// Each benchmark regenerates its artifact via the shared experiment
// drivers in internal/bench and reports the headline numbers as custom
// metrics, so `go test -bench=. -benchmem` reproduces the whole evaluation.
//
// The printed tables (with the paper's reference values) come from
// `go run ./cmd/prefbench`; EXPERIMENTS.md records a full run.
package pref_test

import (
	"strings"
	"testing"

	"pref/internal/bench"
)

// metricName sanitizes a report label into a benchmark metric unit
// (ReportMetric forbids whitespace).
func metricName(parts ...string) string {
	s := strings.Join(parts, "/")
	s = strings.ReplaceAll(s, " ", "_")
	s = strings.ReplaceAll(s, "(", "")
	s = strings.ReplaceAll(s, ")", "")
	return s
}

// benchParams returns the experiment parameters used by the benchmarks:
// 10 nodes (as in Section 5) at laptop scale.
func benchParams() bench.Params {
	p := bench.DefaultParams()
	p.SF = 0.005
	p.DSSF = 0.5
	return p
}

// reportRows surfaces selected report cells as benchmark metrics.
func reportRows(b *testing.B, r *bench.Report, unit string) {
	b.Helper()
	for _, row := range r.Rows {
		for i, v := range row.Values {
			if i < len(r.Columns) {
				b.ReportMetric(v, metricName(row.Label, r.Columns[i]+unit))
			}
		}
	}
}

func runExperiment(b *testing.B, id string) *bench.Report {
	b.Helper()
	fn := bench.Experiments[id]
	if fn == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	var r *bench.Report
	var err error
	for i := 0; i < b.N; i++ {
		r, err = fn(benchParams())
		if err != nil {
			b.Fatal(err)
		}
	}
	return r
}

// BenchmarkTable1_TPCHLocalityRedundancy regenerates Table 1: DL and DR of
// the TPC-H partitioning variants.
func BenchmarkTable1_TPCHLocalityRedundancy(b *testing.B) {
	r := runExperiment(b, "table1")
	reportRows(b, r, "")
}

// BenchmarkFig7_TotalRuntime regenerates Figure 7: total TPC-H runtime per
// variant (simulated milliseconds on the cost model).
func BenchmarkFig7_TotalRuntime(b *testing.B) {
	r := runExperiment(b, "fig7")
	for _, row := range r.Rows {
		v, _ := r.Value(row.Label, "sim_ms")
		b.ReportMetric(v, metricName(row.Label, "sim_ms"))
	}
}

// BenchmarkFig8_PerQuery regenerates Figure 8: per-query runtimes. Only
// the per-variant totals are reported as metrics (22×5 cells would drown
// the output); run `prefbench -exp fig8` for the full table.
func BenchmarkFig8_PerQuery(b *testing.B) {
	r := runExperiment(b, "fig8")
	for ci, col := range r.Columns {
		total := 0.0
		for _, row := range r.Rows {
			if ci < len(row.Values) {
				total += row.Values[ci]
			}
		}
		b.ReportMetric(total, metricName(col, "total_ms"))
	}
}

// BenchmarkFig9_Optimizations regenerates Figure 9: the dup/hasRef index
// optimizations (speedup per case).
func BenchmarkFig9_Optimizations(b *testing.B) {
	r := runExperiment(b, "fig9")
	for _, row := range r.Rows {
		v, _ := r.Value(row.Label, "speedup")
		b.ReportMetric(v, metricName(row.Label, "speedup"))
	}
}

// BenchmarkFig10_BulkLoading regenerates Figure 10: bulk-loading cost per
// variant.
func BenchmarkFig10_BulkLoading(b *testing.B) {
	r := runExperiment(b, "fig10")
	for _, row := range r.Rows {
		v, _ := r.Value(row.Label, "wall_ms")
		b.ReportMetric(v, metricName(row.Label, "load_ms"))
	}
}

// BenchmarkFig11a_TPCH regenerates Figure 11(a): locality vs redundancy on
// TPC-H.
func BenchmarkFig11a_TPCH(b *testing.B) {
	r := runExperiment(b, "fig11a")
	reportRows(b, r, "")
}

// BenchmarkFig11b_TPCDS regenerates Figure 11(b): locality vs redundancy
// on TPC-DS.
func BenchmarkFig11b_TPCDS(b *testing.B) {
	r := runExperiment(b, "fig11b")
	reportRows(b, r, "")
}

// BenchmarkFig12a_ScaleOutTPCH regenerates Figure 12(a): redundancy growth
// with the node count on TPC-H (endpoint metrics only).
func BenchmarkFig12a_ScaleOutTPCH(b *testing.B) {
	r := runExperiment(b, "fig12a")
	for _, col := range r.Columns {
		v, _ := r.Value("n=100", col)
		b.ReportMetric(v, metricName(col, "DR_at_100"))
	}
}

// BenchmarkFig12b_ScaleOutTPCDS regenerates Figure 12(b) for TPC-DS.
func BenchmarkFig12b_ScaleOutTPCDS(b *testing.B) {
	r := runExperiment(b, "fig12b")
	for _, col := range r.Columns {
		v, _ := r.Value("n=100", col)
		b.ReportMetric(v, metricName(col, "DR_at_100"))
	}
}

// BenchmarkFig13_SamplingAccuracy regenerates Figure 13: estimate error
// and design runtime vs sampling rate (the 10% operating point).
func BenchmarkFig13_SamplingAccuracy(b *testing.B) {
	r := runExperiment(b, "fig13")
	for _, col := range r.Columns {
		v, _ := r.Value("10%", col)
		b.ReportMetric(v, metricName(col, "at_10pct"))
	}
}

// ---- ablations ----

// BenchmarkAblation_SpanningTreeChoice: maximum vs minimum spanning tree
// as the co-partitioning edge set (Section 3.2's locality objective).
func BenchmarkAblation_SpanningTreeChoice(b *testing.B) {
	r := runExperiment(b, "ablation-mast")
	reportRows(b, r, "")
}

// BenchmarkAblation_EstimatorChoice: joint expected-copies estimator vs
// the paper's literal formula vs the naive min(n,f) bound.
func BenchmarkAblation_EstimatorChoice(b *testing.B) {
	r := runExperiment(b, "ablation-estimator")
	for _, row := range r.Rows {
		v, _ := r.Value(row.Label, "rel_error")
		b.ReportMetric(v, metricName(row.Label, "rel_error"))
	}
}

// BenchmarkAblation_PartitionIndex: bulk loading with vs without the
// Section 2.3 partition index.
func BenchmarkAblation_PartitionIndex(b *testing.B) {
	r := runExperiment(b, "ablation-partindex")
	for _, row := range r.Rows {
		v, _ := r.Value(row.Label, "wall_ms")
		b.ReportMetric(v, metricName(row.Label, "load_ms"))
	}
}

// BenchmarkAblation_WDPhase1: the WD containment merge's effect on the
// cost-based phase's input size and runtime.
func BenchmarkAblation_WDPhase1(b *testing.B) {
	r := runExperiment(b, "ablation-wdphase1")
	for _, row := range r.Rows {
		v, _ := r.Value(row.Label, "wall_ms")
		b.ReportMetric(v, metricName(row.Label, "design_ms"))
	}
}

// BenchmarkAblation_PartitionPruning: the partition-pruning extension
// (the paper's named future work) on point queries — cluster work saved.
func BenchmarkAblation_PartitionPruning(b *testing.B) {
	r := runExperiment(b, "ablation-pruning")
	for _, row := range r.Rows {
		v, _ := r.Value(row.Label, "rows_processed")
		b.ReportMetric(v, metricName(row.Label, "rows"))
	}
}

// BenchmarkExt_OLTPLocality: the paper's OLTP outlook — fraction of
// customer transactions resolvable on a single node under the
// no-redundancy WD design vs plain hashing.
func BenchmarkExt_OLTPLocality(b *testing.B) {
	r := runExperiment(b, "ext-oltp")
	for _, row := range r.Rows {
		v, _ := r.Value(row.Label, "single_node_pct")
		b.ReportMetric(v, metricName(row.Label, "single_node_pct"))
	}
}
